#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "sim/fault_injection/plan.hpp"
#include "sim/validate.hpp"
#include "telemetry/worm_trace.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace wormsim::sim {

using topology::ChannelId;
using topology::kInvalidId;
using topology::LaneId;
using topology::NodeId;
using topology::PhysChannel;

namespace {

/// First integer cycle at which `next_arrival <= cycle` holds.
std::uint64_t fire_cycle(double next_arrival) {
  return static_cast<std::uint64_t>(std::ceil(next_arrival));
}

std::uint32_t hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

Engine::Engine(const topology::NetView& network,
               const routing::Router& router, TrafficSource* traffic,
               SimConfig config)
    : network_(network),
      router_(router),
      traffic_(traffic),
      config_(config),
      rng_(config.seed) {
  const std::size_t lanes = network_.lane_count();
  const std::size_t channels = network_.channel_count();
  buf_packet_.assign(lanes, kNoPacket);
  buf_seq_.assign(lanes, 0);
  arrived_epoch_.assign(lanes, 0);
  route_out_.assign(lanes, kInvalidId);
  alloc_owner_.assign(lanes, kInvalidId);
  channel_used_epoch_.assign(channels, 0);
  vc_rr_.assign(channels, 0);
  channel_faulty_.resize(channels);
  channel_sources_.assign(channels, 0);
  seed_bits_.resize(channels);
  cur_pass_.resize(channels);
  next_pass_.resize(channels);
  fc_.configure(lanes, config_.flow_control, config_.buffer_depth,
                config_.credit_delay);

  // Flatten the per-channel topology fields the advance loop reads, so a
  // transmit decision never decodes a PhysChannel/Endpoint pair.  One
  // pass over the channel records also collects the switch-input lane
  // scan order — with an implicit backend each record is recomputed on
  // the fly, so visiting it twice would double the construction cost.
  // Lane ids are allocated contiguously per channel in ascending channel
  // order by both backends, so the channel-major walk pushes
  // switch_input_lanes_ in the same ascending lane order the old
  // lane-major walk produced.
  ch_first_lane_.assign(channels, kInvalidId);
  ch_num_lanes_.assign(channels, 0);
  ch_src_node_.assign(channels, kInvalidId);
  ch_dst_is_switch_.resize(channels);
  lane_channel_.assign(lanes, kInvalidId);
  lane_scan_pos_.assign(lanes, kInvalidId);
  lane_dst_switch_.assign(lanes, 0);
  network_.for_each_channel([&](const PhysChannel& ch) {
    ch_first_lane_[ch.id] = ch.first_lane;
    ch_num_lanes_[ch.id] = static_cast<std::uint8_t>(ch.num_lanes);
    if (ch.src.is_node()) {
      ch_src_node_[ch.id] = static_cast<std::uint32_t>(ch.src.id);
    }
    const bool dst_switch = ch.dst.is_switch();
    if (dst_switch) ch_dst_is_switch_.set(ch.id);
    for (unsigned v = 0; v < ch.num_lanes; ++v) {
      const LaneId lane = ch.first_lane + v;
      lane_channel_[lane] = ch.id;
      if (dst_switch) {
        lane_scan_pos_[lane] =
            static_cast<std::uint32_t>(switch_input_lanes_.size());
        switch_input_lanes_.push_back(lane);
        lane_dst_switch_[lane] = static_cast<std::uint32_t>(ch.dst.id);
      }
    }
  });
  header_bits_.resize(switch_input_lanes_.size());

  const std::size_t node_count = network_.node_count();
  node_queue_.resize(node_count);
  node_tx_packet_.assign(node_count, kNoPacket);
  node_tx_sent_.assign(node_count, 0);
  node_next_arrival_.assign(node_count, 0.0);
  tx_pending_flag_.assign(node_count, 0);
  for (NodeId node = 0; node < node_count; ++node) {
    if (traffic_ != nullptr && traffic_->node_active(node)) {
      node_next_arrival_[node] = traffic_->next_gap(node, rng_);
      arrival_calendar_.emplace(fire_cycle(node_next_arrival_[node]), node);
    }
  }

  cand_stride_ =
      std::min<std::uint32_t>(kCandStrideMax, network_.max_route_fanout());
  cand_pkt_.assign(lanes, kNoPacket);
  cand_len_.assign(lanes, 0);
  cand_store_.assign(lanes * cand_stride_, kInvalidId);

  // Feed-forward check for the parallel advance: every switch's incoming
  // channel ids must all be lower than its outgoing ones, so a move can
  // only unblock a strictly lower channel (DESIGN.md §12).  The
  // unidirectional MIN builders lay channels out stage by stage and
  // satisfy this; BMIN's turnaround wiring does not and falls back to the
  // sequential path.  The implicit backend allocates channel ids stage
  // by stage in closed form, so the property holds by construction for
  // every unidirectional layout and the O(channels) scan is skipped.
  if (!network_.materialized()) {
    feed_forward_ = !network_.bidirectional();
  } else {
    const std::size_t switches = network_.switch_count();
    std::vector<std::int64_t> in_max(switches, -1);
    std::vector<std::int64_t> out_min(switches,
                                      static_cast<std::int64_t>(channels));
    network_.for_each_channel([&](const PhysChannel& ch) {
      if (ch.dst.is_switch()) {
        in_max[ch.dst.id] =
            std::max(in_max[ch.dst.id], static_cast<std::int64_t>(ch.id));
      }
      if (ch.src.is_switch()) {
        out_min[ch.src.id] =
            std::min(out_min[ch.src.id], static_cast<std::int64_t>(ch.id));
      }
    });
    feed_forward_ = true;
    for (std::size_t sw = 0; sw < switches; ++sw) {
      if (in_max[sw] >= out_min[sw]) {
        feed_forward_ = false;
        break;
      }
    }
  }

  // Environment override, lowest-friction knob for existing drivers.
  // Exact-width engines (determinism tests) pin their width in config.
  if (!config_.engine_threads_exact) {
    config_.engine_threads =
        util::env_u32_or("WORMSIM_ENGINE_THREADS", config_.engine_threads);
  }
  std::uint32_t threads = config_.engine_threads;
  if (threads == 0) threads = hardware_threads();
  if (!config_.engine_threads_exact) {
    threads = std::min(threads, hardware_threads());
  }
  if (!feed_forward_) threads = 1;
  // Domains are word-aligned slices of the channel-id bitsets; more
  // domains than words cannot be given disjoint words.
  threads = std::min<std::uint32_t>(
      threads,
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     seed_bits_.word_count())));
  engine_threads_ = std::max(1u, threads);
  if (engine_threads_ > 1) {
    const std::uint64_t words = seed_bits_.word_count();
    domain_begin_.resize(engine_threads_ + 1);
    for (std::uint32_t d = 0; d <= engine_threads_; ++d) {
      domain_begin_[d] = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(channels, words * d / engine_threads_ * 64));
    }
    domain_begin_[engine_threads_] = static_cast<std::uint32_t>(channels);
    domain_moves_.resize(engine_threads_);
    domain_busy_seconds_.assign(engine_threads_, 0.0);
    team_ = std::make_unique<AdvanceTeam>(engine_threads_);
  }

  result_.measure_cycles = config_.measure_cycles;
  result_.node_count = network_.node_count();
  result_.flits_per_microsecond = config_.flits_per_microsecond;
  if (config_.record_channel_utilization) {
    result_.channel_busy_cycles.assign(network_.channel_count(), 0);
  }
  if (config_.telemetry.counters) {
    result_.telemetry_counters.resize_for(network_.lane_count(),
                                          network_.switch_count());
    tel_ = &result_.telemetry_counters;
  }
  if (config_.telemetry.sampling) {
    WORMSIM_CHECK(config_.telemetry.sample_interval_cycles > 0);
    sampler_ = telemetry::IntervalSampler(config_.telemetry.sample_capacity);
  }
  if (config_.telemetry.worm_trace ||
      telemetry::worm_trace_enabled_from_env()) {
    worm_tracer_ = std::make_shared<telemetry::WormTracer>(lanes, channels);
    wtrace_ = worm_tracer_.get();
    result_.worm_trace = worm_tracer_;
  }
  if (config_.fault_fraction > 0.0) {
    fault_state_.plan = fault_injection::build_fault_plan(
        network_, config_.fault_fraction, config_.fault_seed,
        config_.fault_at_cycle, config_.fault_repair_cycle);
    fault_injection::validate_plan(network_, fault_state_.plan);
  }
  if (config_.validate || validate_enabled_from_env()) {
    validator_ = std::make_unique<EngineValidator>(*this);
  }
  const std::uint64_t heartbeat =
      telemetry::heartbeat_cycles_from_env(config_.telemetry);
  if (heartbeat > 0) {
    telemetry::RunMonitor::RunInfo info;
    info.dir = telemetry::heartbeat_dir_from_env(config_.telemetry);
    info.tag = config_.telemetry.heartbeat_tag;
    info.heartbeat_cycles = heartbeat;
    info.warmup_cycles = config_.warmup_cycles;
    info.measure_cycles = config_.measure_cycles;
    info.drain_cycles = config_.drain_cycles;
    info.node_count = network_.node_count();
    info.engine = "wormhole";
    run_monitor_ = std::make_unique<telemetry::RunMonitor>(std::move(info));
    monitor_ = run_monitor_.get();
    hb_interval_ = heartbeat;
    hb_stage_intervals_ = telemetry::build_stage_lane_intervals(network_);
  }
  if (config_.telemetry.profile || telemetry::profile_enabled_from_env()) {
    profiler_ = std::make_unique<telemetry::PhaseProfiler>();
    prof_ = profiler_.get();
  }
}

Engine::~Engine() = default;

PacketId Engine::inject_message(NodeId src, std::uint64_t dst,
                                std::uint32_t length) {
  WORMSIM_CHECK_MSG(dst != src, "self-addressed message");
  WORMSIM_CHECK(length >= 1);
  if (config_.flow_control == FlowControlScheme::kVirtualCutThrough) {
    // Cut-through only grants a lane that can hold the whole packet, so a
    // packet longer than the buffer could never route at all.
    WORMSIM_CHECK_MSG(length <= config_.buffer_depth,
                      "virtual cut-through needs buffer_depth >= packet "
                      "length");
  }
  PacketState pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.length = length;
  pkt.create_cycle = cycle_;
  pkt.measured = in_measure_window();
  pkt.turn_stage = routing::make_query(network_, src, dst).turn_stage;
  const auto id = static_cast<PacketId>(packets_.size());
  packets_.push_back(pkt);
  enqueue_packet(src, id);
  trace(TraceEvent::Kind::kCreated, id, 0, topology::kInvalidId);
  if (wtrace_ != nullptr) {
    wtrace_->on_created(id, cycle_, src, dst, length, pkt.measured);
  }
  return id;
}

void Engine::enqueue_packet(NodeId src, PacketId id) {
  std::deque<PacketId>& queue = node_queue_[src];
  if (queue.size() >= config_.queue_capacity) {
    ++result_.dropped_messages;
    packets_[id].deliver_cycle = kNoCycle;
    return;
  }
  queue.push_back(id);
  ++queued_messages_;
  if (node_tx_packet_[src] == kNoPacket) mark_tx_pending(src);
  if (in_measure_window()) {
    result_.max_source_queue =
        std::max<std::uint64_t>(result_.max_source_queue, queue.size());
  }
}

void Engine::generate_arrivals() {
  if (traffic_ == nullptr) return;
  const auto now = static_cast<double>(cycle_);
  // Drain every due calendar entry, then process the due nodes in id
  // order: the RNG draw sequence must match the original all-nodes scan.
  due_nodes_.clear();
  while (!arrival_calendar_.empty() &&
         arrival_calendar_.top().first <= cycle_) {
    due_nodes_.push_back(arrival_calendar_.top().second);
    arrival_calendar_.pop();
  }
  if (due_nodes_.empty()) return;
  std::sort(due_nodes_.begin(), due_nodes_.end());
  for (NodeId node : due_nodes_) {
    double next = node_next_arrival_[node];
    while (next <= now) {
      const std::uint64_t dst = traffic_->next_destination(node, rng_);
      WORMSIM_DCHECK(dst != node);
      const std::uint32_t length = traffic_->next_length(node, rng_);
      const PacketId id = inject_message(node, dst, length);
      if (in_measure_window()) {
        ++result_.generated_messages_in_window;
        result_.generated_flits_in_window += packets_[id].length;
      }
      next += std::max(traffic_->next_gap(node, rng_), 1e-9);
    }
    node_next_arrival_[node] = next;
    arrival_calendar_.emplace(fire_cycle(next), node);
  }
}

void Engine::start_transmissions() {
  // One-port source: start transmitting the queue head when idle.  Only
  // nodes marked pending (new queue head, or a transmission that just
  // finished with more queued) can change state.
  if (tx_pending_.empty()) return;
  for (NodeId node : tx_pending_) {
    tx_pending_flag_[node] = 0;
    std::deque<PacketId>& queue = node_queue_[node];
    if (node_tx_packet_[node] == kNoPacket && !queue.empty()) {
      node_tx_packet_[node] = queue.front();
      queue.pop_front();
      --queued_messages_;
      node_tx_sent_[node] = 0;
      ++transmitting_nodes_;
      activate_channel(network_.injection_channel(node));
    }
  }
  tx_pending_.clear();
}

void Engine::route_and_allocate() {
  // Headers are served in a configurable order; the default rotation
  // keeps any single switch or lane from a systematic priority advantage.
  const std::size_t count = switch_input_lanes_.size();
  if (count == 0) return;
  std::size_t offset = 0;
  switch (config_.arbitration) {
    case ArbitrationOrder::kRotating:
      offset = static_cast<std::size_t>(cycle_ % count);
      break;
    case ArbitrationOrder::kRandom:
      // Drawn every cycle — even with no waiting header — to keep the RNG
      // stream identical to the original full scan (golden tests).
      offset = static_cast<std::size_t>(rng_.below(count));
      break;
    case ArbitrationOrder::kFixed:
      break;
  }
  if (header_count_ == 0) return;
  const bool vct =
      config_.flow_control == FlowControlScheme::kVirtualCutThrough;
  routing::CandidateList fresh;
  routing::CandidateList free_lanes;
  // Visit exactly the set positions, rotated: [offset, count) then
  // [0, offset) — the same order the old rotated sort produced.  A grant
  // clears its own bit; blocked headers keep theirs for next cycle.
  const auto serve = [&](std::uint32_t pos) {
    const LaneId u = switch_input_lanes_[pos];
    WORMSIM_DCHECK(buf_packet_[u] != kNoPacket);
    WORMSIM_DCHECK(buf_seq_[u] == 0);
    WORMSIM_DCHECK(route_out_[u] == kInvalidId);
    const PacketId pid = buf_packet_[u];
    const PacketState& pkt = packets_[pid];
    // Router::candidates is pure in (packet, lane) and packet ids are
    // unique per run, so a blocked header re-arbitrating every cycle
    // reuses its memoized list instead of re-walking the topology.
    const LaneId* cand = nullptr;
    std::size_t cand_count = 0;
    if (cand_pkt_[u] == pid && cand_len_[u] != kCandOverflow) {
      cand = &cand_store_[std::size_t{u} * cand_stride_];
      cand_count = cand_len_[u];
    } else {
      routing::RouteQuery query;
      query.src = pkt.src;
      query.dst = pkt.dst;
      query.turn_stage = pkt.turn_stage;
      fresh.clear();
      router_.candidates(query, u, fresh);
      cand_pkt_[u] = pid;
      if (fresh.size() <= cand_stride_) {
        cand_len_[u] = static_cast<std::uint8_t>(fresh.size());
        std::copy(fresh.begin(), fresh.end(),
                  &cand_store_[std::size_t{u} * cand_stride_]);
      } else {
        cand_len_[u] = kCandOverflow;
      }
      cand = fresh.begin();
      cand_count = fresh.size();
    }
    free_lanes.clear();
    // Virtual cut-through only grants a switch-destined lane whose buffer
    // can absorb the whole packet (ejection lanes consume instantly and
    // are exempt); the first such credit-gated lane is remembered for
    // starvation attribution.
    LaneId credit_gated = kInvalidId;
    bool any_alive = false;  // some candidate is not faulty
    for (std::size_t i = 0; i < cand_count; ++i) {
      const LaneId lane = cand[i];
      if (alloc_owner_[lane] != kInvalidId) {
        any_alive = true;  // allocations never survive on dead channels
        continue;
      }
      if (channel_faulty_.test(lane_channel_[lane])) continue;
      any_alive = true;
      if (vct && lane_scan_pos_[lane] != kInvalidId &&
          !fc_.can_accept_packet(lane, pkt.length)) {
        if (credit_gated == kInvalidId) credit_gated = lane;
        continue;
      }
      free_lanes.push_back(lane);
    }
    if (cand_count > 0 && !any_alive) {
      // Every legal lane is dead: the worm can never progress (only a
      // repair could save it, and waiting would either trip the deadlock
      // watchdog or hold buffers hostage indefinitely).  Terminate it —
      // truncate-and-account, DESIGN.md §14.  Non-adaptive TMIN worms
      // whose unique path died land here; adaptive networks only when
      // the fault fraction disconnects the pair outright.
      terminate_worm(pid);
      return;
    }
    if (free_lanes.empty()) {  // blocked; the bit stays for next cycle
      if (tel_window_ != nullptr) {
        ++tel_window_->lane_blocked[u];
        ++tel_window_->switch_denials[lane_dst_switch_[u]];
      }
      if (wtrace_ != nullptr ||
          (tel_window_ != nullptr && credit_gated != kInvalidId)) {
        // Culprit: the first *allocated* candidate in candidate order (the
        // tracer resolves its holder worm).  A header whose only obstacle
        // is a credit-dry lane is credit-starved, not contending; with
        // every candidate faulty, the first faulty lane — there is no
        // worm to blame.
        LaneId culprit = cand_count == 0 ? kInvalidId : cand[0];
        bool busy = false;
        for (std::size_t i = 0; i < cand_count; ++i) {
          if (alloc_owner_[cand[i]] != kInvalidId) {
            culprit = cand[i];
            busy = true;
            break;
          }
        }
        const bool starved = !busy && credit_gated != kInvalidId;
        if (starved) {
          culprit = credit_gated;
          if (tel_window_ != nullptr) {
            ++tel_window_->lane_credit_starved[culprit];
          }
        }
        if (wtrace_ != nullptr) {
          wtrace_->on_blocked(pid, u, culprit, cycle_, starved);
        }
      }
      return;
    }
    const LaneId chosen =
        config_.lane_selection == LaneSelection::kFirstFree
            ? free_lanes[0]
            : free_lanes[static_cast<std::size_t>(
                  rng_.below(free_lanes.size()))];
    header_bits_.clear(pos);
    --header_count_;
    route_out_[u] = chosen;
    alloc_owner_[chosen] = u;
    activate_channel(lane_channel_[chosen]);
    if (tel_window_ != nullptr) {
      ++tel_window_->switch_grants[lane_dst_switch_[u]];
    }
    if (wtrace_ != nullptr) {
      wtrace_->on_granted(pid, u, chosen, cycle_);
    }
    trace(TraceEvent::Kind::kRouted, pid, 0, chosen);
  };
  header_bits_.for_each_in(offset, count, serve);
  header_bits_.for_each_in(0, offset, serve);
}

void Engine::fail_channel(ChannelId channel) {
  WORMSIM_CHECK_MSG(cycle_ == 0, "fail channels before the first step");
  const PhysChannel ch = network_.channel(channel);
  WORMSIM_CHECK_MSG(ch.src.is_switch() && ch.dst.is_switch(),
                    "failing a node link disconnects a one-port node");
  channel_faulty_.set(channel);
  fault_any_ = true;
}

void Engine::set_fault_plan(fault_injection::FaultPlan plan) {
  WORMSIM_CHECK_MSG(cycle_ == 0, "install fault plans before the first step");
  fault_injection::validate_plan(network_, plan);
  fault_state_ = fault_injection::FaultState{};
  fault_state_.plan = std::move(plan);
}

PacketId Engine::chain_worm(LaneId u) const {
  // The worm streaming through input lane `u` (its route is held): the
  // FIFO head is the oldest un-crossed flit and belongs to the route
  // holder; an empty FIFO means the tail is strictly upstream, so follow
  // the allocation chain until flits — or the still-transmitting
  // source — are found.
  while (true) {
    if (fc_.count[u] > 0) return buf_packet_[u];
    const ChannelId ch = lane_channel_[u];
    const std::uint32_t src_node = ch_src_node_[ch];
    if (src_node != kInvalidId) return node_tx_packet_[src_node];
    const LaneId up = alloc_owner_[u];
    if (up == kInvalidId) return kNoPacket;  // released chain, no worm
    u = up;
  }
}

std::uint32_t Engine::fc_remove_packet(LaneId lane, PacketId pid) {
  const std::uint32_t count = fc_.count[lane];
  if (count == 0) return 0;
  const std::size_t base = fc_.ext_base(lane);
  // Gather the survivors in FIFO order (head slot, then extensions).
  std::vector<PacketId> keep_pkt;
  std::vector<std::uint32_t> keep_seq;
  std::vector<std::uint64_t> keep_epoch;
  const bool head_removed = buf_packet_[lane] == pid;
  if (!head_removed) {
    keep_pkt.push_back(buf_packet_[lane]);
    keep_seq.push_back(buf_seq_[lane]);
    keep_epoch.push_back(arrived_epoch_[lane]);
  }
  for (std::uint32_t s = 0; s + 1 < count; ++s) {
    if (fc_.ext_packet[base + s] == pid) continue;
    keep_pkt.push_back(fc_.ext_packet[base + s]);
    keep_seq.push_back(fc_.ext_seq[base + s]);
    keep_epoch.push_back(fc_.ext_epoch[base + s]);
  }
  const auto kept = static_cast<std::uint32_t>(keep_pkt.size());
  const std::uint32_t removed = count - kept;
  if (removed == 0) return 0;

  // Unregister the worm's unrouted header if it sat at this head slot
  // (the bit state is authoritative: set iff an unrouted header is
  // registered — a granted header already cleared it).
  if (head_removed && buf_seq_[lane] == 0 &&
      lane_scan_pos_[lane] != kInvalidId &&
      header_bits_.test(lane_scan_pos_[lane])) {
    header_bits_.clear(lane_scan_pos_[lane]);
    --header_count_;
  }

  // Compact the survivors back, clearing the freed tail slots exactly as
  // fc_pop leaves them so the validator's occupancy recount holds.
  fc_.count[lane] = kept;
  occupied_ -= removed;
  if (kept > 0) {
    buf_packet_[lane] = keep_pkt[0];
    buf_seq_[lane] = keep_seq[0];
    arrived_epoch_[lane] = keep_epoch[0];
    for (std::uint32_t s = 0; s + 1 < kept; ++s) {
      fc_.ext_packet[base + s] = keep_pkt[s + 1];
      fc_.ext_seq[base + s] = keep_seq[s + 1];
      fc_.ext_epoch[base + s] = keep_epoch[s + 1];
    }
  } else {
    buf_packet_[lane] = kNoPacket;
  }
  for (std::uint32_t s = kept > 0 ? kept - 1 : 0; s + 1 < count; ++s) {
    fc_.ext_packet[base + s] = kNoPacket;
    fc_.ext_seq[base + s] = 0;
    fc_.ext_epoch[base + s] = 0;
  }

  // A survivor promoted into the head slot can only be a header: a worm
  // queued behind the removed one has popped nothing yet, so its oldest
  // present flit is seq 0.  Register it.
  if (head_removed && kept > 0 && buf_seq_[lane] == 0 &&
      lane_scan_pos_[lane] != kInvalidId) {
    WORMSIM_DCHECK(route_out_[lane] == kInvalidId);
    add_header_lane(lane);
    if (wtrace_ != nullptr) {
      wtrace_->on_header_arrival(buf_packet_[lane], lane, cycle_);
    }
  }

  // Return the freed slots upstream, mirroring fc_pop's per-flit
  // sender-side accounting (the credit-conservation invariant needs
  // every discarded flit's credit back, even on a dead lane).
  const ChannelId lane_ch = lane_channel_[lane];
  const bool lane_dead = channel_faulty_.test(lane_ch);
  if (fc_.scheme == FlowControlScheme::kOnOff) {
    // GO is emitted when occupancy drains *to* the threshold; removal
    // crosses it at most once.
    if (kept <= fc_.on_threshold && fc_.on_threshold < count) {
      fc_deliver_or_queue(lane, /*go=*/true);
    }
  } else if (fc_.delay == 0) {
    fc_.credits[lane] += removed;
    fc_close_starve(lane);
  } else {
    for (std::uint32_t r = 0; r < removed; ++r) {
      fc_.events.push_back({cycle_ + fc_.delay, lane, /*go=*/false});
    }
  }
  if (fc_.scheme != FlowControlScheme::kCredit || fc_.delay > 0) {
    if (!lane_dead && !fc_.can_accept(lane) && upstream_has_flit(lane)) {
      fc_open_starve(lane);
    }
  }
  // Freed slots may unblock a sender of a surviving worm on this lane.
  if (!lane_dead && channel_sources_[lane_ch] != 0) {
    schedule_channel(lane_ch);
  }
  if (tel_window_ != nullptr) {
    tel_window_->lane_fault_terminated[lane] += removed;
  }
  return removed;
}

void Engine::terminate_worm(PacketId pid) {
  PacketState& pkt = packets_[pid];
  WORMSIM_DCHECK(!pkt.delivered());
  WORMSIM_DCHECK(!pkt.terminated());
  // (1) Stop the source mid-message: the un-sent tail never enters.
  const auto src = static_cast<NodeId>(pkt.src);
  std::uint32_t sent = pkt.length;
  if (node_tx_packet_[src] == pid) {
    sent = node_tx_sent_[src];
    node_tx_packet_[src] = kNoPacket;
    node_tx_sent_[src] = 0;
    --transmitting_nodes_;
    deactivate_channel(network_.injection_channel(src));
    if (!node_queue_[src].empty()) mark_tx_pending(src);
  }
  // (2) Release the allocation chain.  Collect first: releasing mutates
  // the alloc_owner_ links chain_worm() walks.
  std::vector<LaneId> held;
  const auto lanes = static_cast<LaneId>(buf_packet_.size());
  for (LaneId u = 0; u < lanes; ++u) {
    if (route_out_[u] != kInvalidId && chain_worm(u) == pid) {
      held.push_back(u);
    }
  }
  for (const LaneId u : held) {
    const LaneId out = route_out_[u];
    route_out_[u] = kInvalidId;
    alloc_owner_[out] = kInvalidId;
    deactivate_channel(lane_channel_[out]);
    if (wtrace_ != nullptr) wtrace_->on_lane_released(out);
  }
  // (3) Discard the worm's buffered flits everywhere it has any.
  std::uint32_t truncated = 0;
  for (LaneId lane = 0; lane < lanes; ++lane) {
    truncated += fc_remove_packet(lane, pid);
  }
  // (4) Account: delivered + terminated is the generalized conservation
  // the validator reconciles (flits ejected before the kill stay
  // delivered; sent - truncated of them were).
  pkt.terminate_cycle = cycle_;
  pkt.flits_sent_at_kill = sent;
  pkt.flits_truncated = truncated;
  ++result_.terminated_messages;
  result_.terminated_flits += truncated;
  --worms_in_flight_;
  // Termination is progress: state changed, nothing is stuck.
  last_move_cycle_ = cycle_;
  trace(TraceEvent::Kind::kTerminated, pid, sent, topology::kInvalidId);
  if (wtrace_ != nullptr) wtrace_->on_terminated(pid, cycle_);
}

void Engine::apply_fault_plan() {
  fault_state_.applied = true;
  fault_any_ = true;
  if (monitor_ != nullptr) {
    monitor_->on_fault(cycle_, "kill", fault_state_.plan.channels.size());
  }
  const std::vector<ChannelId>& channels = fault_state_.plan.channels;
  for (const ChannelId ch : channels) channel_faulty_.set(ch);
  // Victims: every worm resident in, streaming through, or allocated
  // onto a dead lane (a dead channel takes its input buffers with it).
  // Worms whose only *future* paths died are caught by the next
  // route_and_allocate instead.
  std::vector<PacketId> victims;
  for (const ChannelId ch : channels) {
    const LaneId first = ch_first_lane_[ch];
    for (unsigned v = 0; v < ch_num_lanes_[ch]; ++v) {
      const LaneId lane = first + v;
      if (fc_.count[lane] > 0) {
        victims.push_back(buf_packet_[lane]);
        const std::size_t base = fc_.ext_base(lane);
        for (std::uint32_t s = 0; s + 1 < fc_.count[lane]; ++s) {
          victims.push_back(fc_.ext_packet[base + s]);
        }
      }
      if (route_out_[lane] != kInvalidId) {
        victims.push_back(chain_worm(lane));
      }
      if (alloc_owner_[lane] != kInvalidId) {
        victims.push_back(chain_worm(alloc_owner_[lane]));
      }
    }
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  for (const PacketId pid : victims) {
    if (pid == kNoPacket) continue;
    if (!packets_[pid].terminated()) terminate_worm(pid);
  }
}

void Engine::repair_fault_plan() {
  fault_state_.repaired = true;
  if (monitor_ != nullptr) {
    monitor_->on_fault(cycle_, "repair", fault_state_.plan.channels.size());
  }
  for (const ChannelId ch : fault_state_.plan.channels) {
    channel_faulty_.clear(ch);
  }
  // Blocked headers re-arbitrate every cycle and new grants re-seed the
  // repaired channels, so no explicit wake-up is needed.
}

int Engine::decide_channel(ChannelId ch_id) {
  if (channel_used_epoch_[ch_id] == epoch_ || channel_faulty_.test(ch_id)) {
    return -1;
  }
  const LaneId first = ch_first_lane_[ch_id];
  const unsigned num = ch_num_lanes_[ch_id];
  const std::uint32_t src_node = ch_src_node_[ch_id];

  // Gather the lanes of this physical channel that could transmit a flit
  // right now, then let the round-robin pointer pick among them.
  std::uint32_t ready_mask = 0;
  if (src_node != kInvalidId) {
    // Injection channel: the node pushes flits of its active message.
    if (node_tx_packet_[src_node] != kNoPacket) {
      for (unsigned v = 0; v < num; ++v) {
        const LaneId lane = first + v;
        if (!fc_.can_accept(lane)) {  // no credit / stopped / buffer full
          fc_open_starve(lane);
          continue;
        }
        ready_mask |= 1u << v;
      }
    }
  } else {
    const bool dst_switch = ch_dst_is_switch_.test(ch_id);
    for (unsigned v = 0; v < num; ++v) {
      const LaneId lane = first + v;
      const LaneId u = alloc_owner_[lane];
      if (u == kInvalidId) continue;
      if (buf_packet_[u] == kNoPacket || arrived_epoch_[u] == epoch_) {
        continue;
      }
      WORMSIM_DCHECK(route_out_[u] == lane);
      if (dst_switch && !fc_.can_accept(lane)) {
        fc_open_starve(lane);
        continue;
      }
      ready_mask |= 1u << v;
    }
  }
  if (ready_mask == 0) return -1;

  unsigned pick = vc_rr_[ch_id] % num;
  while ((ready_mask & (1u << pick)) == 0) pick = (pick + 1) % num;
  vc_rr_[ch_id] = static_cast<std::uint8_t>((pick + 1) % num);
  return static_cast<int>(pick);
}

void Engine::apply_move(ChannelId ch_id, unsigned pick) {
  const LaneId lane = ch_first_lane_[ch_id] + pick;
  const std::uint32_t src_node = ch_src_node_[ch_id];
  if (src_node != kInvalidId) {
    move_from_node(src_node, lane);
  } else {
    move_from_switch(alloc_owner_[lane], lane);
  }
  channel_used_epoch_[ch_id] = epoch_;
  if (util_window_) {
    ++result_.channel_busy_cycles[ch_id];
  }
  if (tel_window_ != nullptr) {
    ++tel_window_->lane_flits[lane];
  }
  last_move_cycle_ = cycle_;
}

void Engine::move_from_node(NodeId node_id, LaneId lane) {
  const PacketId tx = node_tx_packet_[node_id];
  const std::uint32_t sent = node_tx_sent_[node_id];
  PacketState& pkt = packets_[tx];
  const bool was_head = fc_push(lane, tx, sent);
  // The arrived flit can cross its (already routed) next hop next cycle.
  // A flit landing behind the head changes nothing about readiness.
  if (was_head && route_out_[lane] != kInvalidId) {
    schedule_channel(lane_channel_[route_out_[lane]]);
  }
  if (sent == 0) {
    pkt.inject_cycle = cycle_;
    ++worms_in_flight_;
    if (wtrace_ != nullptr) wtrace_->on_injected(tx, cycle_);
    // A header behind an earlier worm's flits becomes routable only when
    // it reaches the head slot (the tail-pop in fc_pop promotes it).
    if (was_head) {
      add_header_lane(lane);  // injection channels end at switches
      if (wtrace_ != nullptr) {
        wtrace_->on_header_arrival(tx, lane, cycle_);
      }
    }
  }
  trace(TraceEvent::Kind::kFlitMoved, tx, sent, lane);
  node_tx_sent_[node_id] = sent + 1;
  if (sent + 1 == pkt.length) {
    node_tx_packet_[node_id] = kNoPacket;
    node_tx_sent_[node_id] = 0;
    --transmitting_nodes_;
    deactivate_channel(lane_channel_[lane]);
    if (!node_queue_[node_id].empty()) mark_tx_pending(node_id);
  }
}

void Engine::move_from_switch(LaneId in_lane, LaneId out_lane) {
  const PacketId pkt_id = buf_packet_[in_lane];
  const std::uint32_t seq = buf_seq_[in_lane];
  const PacketState& pkt = packets_[pkt_id];
  const bool tail = seq + 1 == pkt.length;
  const ChannelId out_ch = lane_channel_[out_lane];

  fc_pop(in_lane);
  // The channel feeding in_lane's buffer may now transmit its next flit;
  // the worklist re-tries it at the scan position this move sits at.
  unblocked_ = lane_channel_[in_lane];
  trace(TraceEvent::Kind::kFlitMoved, pkt_id, seq, out_lane);
  if (!ch_dst_is_switch_.test(out_ch)) {
    deliver_flit(pkt_id, seq);
  } else {
    const bool was_head = fc_push(out_lane, pkt_id, seq);
    if (was_head && seq == 0) {
      add_header_lane(out_lane);
      if (wtrace_ != nullptr) {
        wtrace_->on_header_arrival(pkt_id, out_lane, cycle_);
      }
    }
    // The arrived flit can cross its (already routed) next hop next cycle.
    if (was_head && route_out_[out_lane] != kInvalidId) {
      schedule_channel(lane_channel_[route_out_[out_lane]]);
    }
  }
  if (tail) {
    // The worm's tail has crossed this hop: release both the input unit's
    // route and the output lane for the next worm.
    route_out_[in_lane] = kInvalidId;
    alloc_owner_[out_lane] = kInvalidId;
    deactivate_channel(out_ch);
    if (wtrace_ != nullptr) wtrace_->on_lane_released(out_lane);
    // A deeper FIFO can already hold the next worm's header; it becomes
    // routable the moment the previous tail clears the head slot.
    if (fc_.count[in_lane] > 0 && buf_seq_[in_lane] == 0) {
      add_header_lane(in_lane);
      if (wtrace_ != nullptr) {
        wtrace_->on_header_arrival(buf_packet_[in_lane], in_lane, cycle_);
      }
    }
  }
}

bool Engine::fc_push(LaneId lane, PacketId pkt, std::uint32_t seq) {
  const bool was_head = fc_.count[lane] == 0;
  if (was_head) {
    buf_packet_[lane] = pkt;
    buf_seq_[lane] = seq;
    arrived_epoch_[lane] = epoch_;
  } else {
    const std::size_t slot = fc_.ext_base(lane) + (fc_.count[lane] - 1);
    fc_.ext_packet[slot] = pkt;
    fc_.ext_seq[slot] = seq;
    fc_.ext_epoch[slot] = epoch_;
  }
  ++fc_.count[lane];
  ++occupied_;
  if (fc_.scheme == FlowControlScheme::kOnOff) {
    // Occupancy rose to the stop level: tell the sender to pause.  The
    // threshold leaves room for the flits still sendable while the signal
    // travels, so the FIFO can never overflow.
    if (fc_.count[lane] == fc_.off_threshold) {
      fc_deliver_or_queue(lane, /*go=*/false);
    }
  } else {
    WORMSIM_DCHECK(fc_.credits[lane] > 0);
    --fc_.credits[lane];
  }
  return was_head;
}

void Engine::fc_pop(LaneId lane) {
  --fc_.count[lane];
  --occupied_;
  const std::uint32_t remaining = fc_.count[lane];
  if (remaining > 0) {
    // Promote the next slot to the head, oldest first.  Its recorded
    // arrival epoch rides along, so a flit pushed this very cycle still
    // waits a cycle before crossing the next channel.
    const std::size_t base = fc_.ext_base(lane);
    buf_packet_[lane] = fc_.ext_packet[base];
    buf_seq_[lane] = fc_.ext_seq[base];
    arrived_epoch_[lane] = fc_.ext_epoch[base];
    for (std::uint32_t s = 0; s + 1 < remaining; ++s) {
      fc_.ext_packet[base + s] = fc_.ext_packet[base + s + 1];
      fc_.ext_seq[base + s] = fc_.ext_seq[base + s + 1];
      fc_.ext_epoch[base + s] = fc_.ext_epoch[base + s + 1];
    }
    fc_.ext_packet[base + remaining - 1] = kNoPacket;
    fc_.ext_seq[base + remaining - 1] = 0;
    fc_.ext_epoch[base + remaining - 1] = 0;
  } else {
    buf_packet_[lane] = kNoPacket;
  }
  // Return the freed slot to the sender.
  if (fc_.scheme == FlowControlScheme::kOnOff) {
    if (fc_.count[lane] == fc_.on_threshold) {
      fc_deliver_or_queue(lane, /*go=*/true);
    }
  } else if (fc_.delay == 0) {
    // Instant credit return: the sender sees the free slot this cycle —
    // at depth 1 exactly the legacy "downstream buffer is empty" check.
    ++fc_.credits[lane];
    fc_close_starve(lane);
  } else {
    fc_.events.push_back({cycle_ + fc_.delay, lane, /*go=*/false});
  }
  if (fc_.scheme != FlowControlScheme::kCredit || fc_.delay > 0) {
    // The freed slot may leave the sender gated with space downstream
    // (credit in flight, or an on/off pause): starvation begins now, and
    // no try_channel attempt will observe it — the sender is not seeded
    // until the gate lifts.
    if (!fc_.can_accept(lane) && upstream_has_flit(lane)) {
      fc_open_starve(lane);
    }
  }
}

void Engine::fc_deliver_or_queue(LaneId lane, bool go) {
  if (fc_.delay == 0) {
    const bool was_stopped = fc_.stopped[lane] != 0;
    fc_.stopped[lane] = go ? 0 : 1;
    // The pop-site unblock retry re-seeds the sender, so an inline GO
    // needs no explicit wake.
    if (go && was_stopped) fc_close_starve(lane);
  } else {
    fc_.events.push_back({cycle_ + fc_.delay, lane, go});
  }
}

void Engine::drain_flow_control_events() {
  while (!fc_.events.empty() && fc_.events.front().due <= cycle_) {
    const FlowControlEvent ev = fc_.events.front();
    fc_.events.pop_front();
    bool now_sendable = false;
    if (fc_.scheme == FlowControlScheme::kOnOff) {
      now_sendable = ev.go && fc_.stopped[ev.lane] != 0;
      fc_.stopped[ev.lane] = ev.go ? 0 : 1;
    } else {
      now_sendable = fc_.credits[ev.lane] == 0;
      ++fc_.credits[ev.lane];
    }
    if (now_sendable) {
      fc_close_starve(ev.lane);
      // Wake the sender: schedule its channel for this cycle's advance
      // (the drain runs before the phases).  Source-less channels have
      // nothing to send; skipping them keeps the seed set exact.
      const ChannelId ch = lane_channel_[ev.lane];
      if (channel_sources_[ch] != 0) schedule_channel(ch);
    }
  }
}

void Engine::fc_close_starve(LaneId lane) {
  if (fc_.starve_since[lane] == kNoCycle) return;
  const std::uint64_t cycles = cycle_ - fc_.starve_since[lane];
  fc_.starve_since[lane] = kNoCycle;
  if (cycles == 0) return;
  if (tel_window_ != nullptr) {
    tel_window_->lane_credit_starved[lane] += cycles;
  }
  if (wtrace_ != nullptr) {
    // Blame the worm whose flit sat waiting for the gate to lift: the
    // transmitting node's packet on an injection lane, the upstream
    // FIFO's head worm otherwise.
    const std::uint32_t src_node = ch_src_node_[lane_channel_[lane]];
    PacketId worm = kNoPacket;
    if (src_node != kInvalidId) {
      worm = node_tx_packet_[src_node];
    } else if (alloc_owner_[lane] != kInvalidId) {
      worm = buf_packet_[alloc_owner_[lane]];
    }
    wtrace_->on_credit_starved(worm, lane, cycles);
  }
}

bool Engine::upstream_has_flit(LaneId lane) const {
  const std::uint32_t src_node = ch_src_node_[lane_channel_[lane]];
  if (src_node != kInvalidId) {
    return node_tx_packet_[src_node] != kNoPacket;
  }
  const LaneId owner = alloc_owner_[lane];
  return owner != kInvalidId && buf_packet_[owner] != kNoPacket;
}

void Engine::deliver_flit(PacketId pkt_id, std::uint32_t seq) {
  PacketState& pkt = packets_[pkt_id];
  WORMSIM_DCHECK(network_
                     .channel(network_.ejection_channel(
                         static_cast<NodeId>(pkt.dst)))
                     .dst.id == pkt.dst);
  if (in_measure_window()) {
    ++result_.delivered_flits_in_window;
  }
  ++delivered_flits_total_;
  if (seq + 1 == pkt.length) {
    pkt.deliver_cycle = cycle_;
    --worms_in_flight_;
    trace(TraceEvent::Kind::kDelivered, pkt_id, seq, topology::kInvalidId);
    if (wtrace_ != nullptr) wtrace_->on_delivered(pkt_id, cycle_);
    ++result_.delivered_messages_total;
    if (pkt.measured) {
      const auto latency =
          static_cast<double>(cycle_ - pkt.create_cycle);
      result_.latency_cycles.add(latency);
      result_.latency_histogram.add(latency);
      result_.network_latency_cycles.add(
          static_cast<double>(cycle_ - pkt.inject_cycle));
      result_.queueing_cycles.add(
          static_cast<double>(pkt.inject_cycle - pkt.create_cycle));
    }
  }
}

void Engine::advance_flits() {
  // Epoch-stamped channel_used_/arrived_ replace the two per-cycle
  // std::fill passes: bumping the epoch invalidates every stamp at once.
  ++epoch_;

  // Consume the event frontier: every channel scheduled since the previous
  // advance — by a grant, a transmission start, a flit arrival onto a
  // routed lane, or its own move last cycle.  This is a superset of the
  // channels that can move at pass one (see DESIGN.md for the induction),
  // and the ascending bit scan visits them exactly like pass one of the
  // original full scan.
  cur_pass_.swap(seed_bits_);

  // Resolve movement to a fixpoint: a move can free a buffer that enables
  // another move in the same cycle, which is exactly how an unblocked worm
  // slides forward one hop as a unit.  Invariant reproducing the original
  // scan order: a move at channel c re-tries the channel u it unblocked in
  // the *current* pass when u > c (the ascending scan has not reached it
  // yet) and in the *next* pass otherwise.  Readiness only ever arises
  // from such unblocks — every other state change during advance removes
  // readiness — so skipping never-seeded channels drops no move.
  if (engine_threads_ > 1) {
    while (cur_pass_.any()) advance_pass_parallel();
  } else {
    while (cur_pass_.any()) advance_pass_sequential();
  }
}

void Engine::advance_pass_sequential() {
  cur_pass_.consume([&](std::uint32_t ch) {
    unblocked_ = kInvalidId;
    if (!try_channel(ch)) return;
    // A multi-lane channel may still hold another ready lane, and a
    // streaming channel wants its next flit: a mover is always a
    // candidate again next cycle.
    schedule_channel(ch);
    const ChannelId u = unblocked_;
    if (u == kInvalidId || channel_sources_[u] == 0 ||
        channel_used_epoch_[u] == epoch_) {
      // Nothing upstream, or it already transmitted this cycle (in
      // which case its own move rescheduled it for the next one).
      return;
    }
    if (u > ch) {
      cur_pass_.set(u);  // the ascending scan has not reached u yet
    } else {
      next_pass_.set(u);
    }
  });
  cur_pass_.swap(next_pass_);
}

void Engine::advance_pass_parallel() {
  // Profiler attribution: everything before the team run (bitmap scans,
  // pass bookkeeping) is generic advance work; the team run itself is
  // phase A, the sequential replay below is phase B.
  if (prof_ != nullptr) prof_->lap(telemetry::EnginePhase::kAdvance);
  // Phase A: every domain records the transmit decision for each worklist
  // channel in its own channel-id slice, against the immutable pre-pass
  // state (no move has been applied; see DESIGN.md §12 for why each
  // decision sees exactly what the sequential ascending scan would).
  // Writes are confined to the domain's own channels (vc_rr_, recs) and
  // own lanes (starve_since), so domains never race.
  team_->run([this](unsigned d) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<MoveRec>& recs = domain_moves_[d];
    recs.clear();
    cur_pass_.for_each_in(domain_begin_[d], domain_begin_[d + 1],
                          [this, &recs](std::uint32_t ch) {
                            const int pick = decide_channel(ch);
                            if (pick >= 0) {
                              recs.push_back(
                                  {ch, static_cast<std::uint8_t>(pick)});
                            }
                          });
    domain_busy_seconds_[d] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  });
  if (prof_ != nullptr) prof_->lap(telemetry::EnginePhase::kAdvanceDecide);
  // Phase B: apply the recorded moves sequentially in canonical ascending
  // channel order (domains are id-contiguous and each domain's records are
  // in scan order), merging boundary effects — buffer pops that re-arm an
  // upstream domain's channel, header arrivals, telemetry — exactly as
  // the sequential pass would.  Feed-forward topology guarantees a move
  // only unblocks a strictly lower channel, so the current pass's bitmap
  // never changes mid-scan and every re-arm lands in the next pass.
  cur_pass_.reset();
  for (std::uint32_t d = 0; d < engine_threads_; ++d) {
    for (const MoveRec& rec : domain_moves_[d]) {
      unblocked_ = kInvalidId;
      apply_move(rec.channel, rec.pick);
      schedule_channel(rec.channel);
      const ChannelId u = unblocked_;
      if (u == kInvalidId || channel_sources_[u] == 0 ||
          channel_used_epoch_[u] == epoch_) {
        continue;
      }
      WORMSIM_DCHECK(u < rec.channel);
      next_pass_.set(u);
    }
  }
  cur_pass_.swap(next_pass_);
  if (prof_ != nullptr) prof_->lap(telemetry::EnginePhase::kAdvanceApply);
}

void Engine::record_sample() {
  telemetry::Sample sample;
  sample.cycle = cycle_;
  sample.delivered_flits = delivered_flits_total_;
  sample.flits_in_flight = occupied_;
  sample.worms_in_flight = worms_in_flight_;
  sample.mean_queue_depth = static_cast<double>(queued_messages_) /
                            static_cast<double>(node_queue_.size());
  sampler_.record(sample);
}

void Engine::step() {
  using telemetry::EnginePhase;
  const bool measuring = in_measure_window();
  tel_window_ = measuring ? tel_ : nullptr;
  util_window_ = measuring && config_.record_channel_utilization;
  if (prof_ != nullptr) prof_->mark();
  if (!fc_.events.empty()) drain_flow_control_events();
  if (prof_ != nullptr) prof_->lap(EnginePhase::kFlowControl);
  if (fault_state_.kill_due(cycle_)) apply_fault_plan();
  if (fault_state_.repair_due(cycle_)) repair_fault_plan();
  if (prof_ != nullptr) prof_->lap(EnginePhase::kFault);
  generate_arrivals();
  if (prof_ != nullptr) prof_->lap(EnginePhase::kArrivals);
  start_transmissions();
  if (prof_ != nullptr) prof_->lap(EnginePhase::kStartTx);
  route_and_allocate();
  if (prof_ != nullptr) prof_->lap(EnginePhase::kRouting);
  advance_flits();
  if (prof_ != nullptr) prof_->lap(EnginePhase::kAdvance);

  if (config_.telemetry.sampling &&
      cycle_ % config_.telemetry.sample_interval_cycles == 0) {
    record_sample();
  }
  // Heartbeat cadence: `cycle_ + 1` cycles are complete once this step
  // ends, so window boundaries land on exact multiples of the interval.
  if (monitor_ != nullptr && (cycle_ + 1) % hb_interval_ == 0) {
    monitor_->on_heartbeat(heartbeat_snapshot(cycle_ + 1));
  }
  if (prof_ != nullptr) prof_->lap(EnginePhase::kTelemetry);

  if (validator_ != nullptr) validator_->on_cycle_end();
  if (prof_ != nullptr) prof_->lap(EnginePhase::kValidate);

  if (occupied_ > 0 &&
      cycle_ - last_move_cycle_ > config_.deadlock_watchdog_cycles) {
    report_deadlock();
  }
  ++cycle_;
}

telemetry::HeartbeatSnapshot Engine::heartbeat_snapshot(
    std::uint64_t cycle) const {
  telemetry::HeartbeatSnapshot snap;
  snap.cycle = cycle;
  snap.messages_created = packets_.size();
  snap.messages_delivered = result_.delivered_messages_total;
  snap.messages_terminated = result_.terminated_messages;
  snap.flits_delivered = delivered_flits_total_;
  snap.flits_terminated = result_.terminated_flits;
  snap.flits_in_flight = occupied_;
  snap.worms_in_flight = worms_in_flight_;
  snap.queued_messages = queued_messages_;
  snap.dropped_messages = result_.dropped_messages;
  snap.faulty_channels = channel_faulty_.count();
  snap.stage_occupancy.reserve(hb_stage_intervals_.size());
  for (const auto& intervals : hb_stage_intervals_) {
    std::uint64_t flits = 0;
    for (const auto& [begin, end] : intervals) {
      for (LaneId lane = begin; lane < end; ++lane) flits += fc_.count[lane];
    }
    snap.stage_occupancy.push_back(flits);
  }
  return snap;
}

void Engine::report_deadlock() const {
  std::fprintf(stderr,
               "wormsim: deadlock watchdog fired at cycle %llu "
               "(%lld flits stuck)\n",
               static_cast<unsigned long long>(cycle_),
               static_cast<long long>(occupied_));
  std::size_t sourced = 0;
  for (std::uint32_t n : channel_sources_) sourced += n != 0 ? 1 : 0;
  std::fprintf(stderr,
               "  active sets: %zu channels with sources, %zu seeded for "
               "next cycle, %zu unrouted headers, %zu tx-pending nodes, "
               "%zu calendar entries\n",
               sourced, seed_bits_.count(), header_count_,
               tx_pending_.size(), arrival_calendar_.size());
  for (LaneId lane = 0; lane < buf_packet_.size(); ++lane) {
    if (buf_packet_[lane] == kNoPacket) continue;
    const PacketState& pkt = packets_[buf_packet_[lane]];
    const PhysChannel ch = network_.lane_channel(lane);
    std::fprintf(stderr,
                 "  lane %u (channel %u role %d) holds packet %u seq %u "
                 "(src %llu dst %llu len %u)\n",
                 lane, ch.id, static_cast<int>(ch.role), buf_packet_[lane],
                 buf_seq_[lane], static_cast<unsigned long long>(pkt.src),
                 static_cast<unsigned long long>(pkt.dst), pkt.length);
    for (std::uint32_t s = 0; s + 1 < fc_.count[lane]; ++s) {
      const std::size_t slot = fc_.ext_base(lane) + s;
      std::fprintf(stderr, "    fifo slot %u holds packet %u seq %u\n",
                   s + 1, fc_.ext_packet[slot], fc_.ext_seq[slot]);
    }
  }
  if (!fc_.events.empty()) {
    std::fprintf(stderr, "  %zu backpressure events in flight (next due "
                 "cycle %llu)\n",
                 fc_.events.size(),
                 static_cast<unsigned long long>(fc_.events.front().due));
  }
  if (validator_ != nullptr) validator_->describe_stall();
  WORMSIM_CHECK_MSG(false, "deadlock detected (should be impossible)");
}

bool Engine::run_until_idle(std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (idle()) return true;
    step();
  }
  return idle();
}

SimResult Engine::run() {
  const std::uint64_t total = config_.total_cycles();
  const std::uint64_t measure_end =
      config_.warmup_cycles + config_.measure_cycles;
  const auto run_start = std::chrono::steady_clock::now();
  while (cycle_ < total) {
    step();
  }
  if (prof_ != nullptr) {
    profiler_->set_total_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count());
  }
  // Time-to-drain SLO: cycles past the measurement window until every
  // message created before it ended was resolved (delivered or
  // fault-terminated).  Sources keep offering traffic through the drain
  // phase, so "network momentarily empty" would never fire at real
  // loads; resolving the pre-drain population is the degraded-mode
  // question — a fault that strands traffic shows up as a failed drain.
  std::uint64_t last_resolved = 0;
  bool all_resolved = true;
  for (const PacketState& pkt : packets_) {
    if (pkt.measured && !pkt.delivered()) {
      ++result_.measured_messages_unfinished;
    }
    if (pkt.create_cycle >= measure_end) continue;
    if (pkt.delivered()) {
      last_resolved = std::max(last_resolved, pkt.deliver_cycle);
    } else if (pkt.terminated()) {
      last_resolved = std::max(last_resolved, pkt.terminate_cycle);
    } else {
      // Still queued at a source (or dropped at creation): the pre-drain
      // population never resolved inside the drain budget.
      all_resolved = false;
    }
  }
  result_.drained = all_resolved;
  result_.time_to_drain_cycles =
      all_resolved
          ? (last_resolved > measure_end ? last_resolved - measure_end : 0)
          : config_.drain_cycles;
  result_.telemetry_samples = sampler_.ordered();
  result_.engine_threads_used = engine_threads_;
  result_.engine_domain_busy_seconds = domain_busy_seconds_;
  if (monitor_ != nullptr) {
    monitor_->finalize(heartbeat_snapshot(cycle_), result_.drained,
                       static_cast<double>(result_.time_to_drain_cycles) /
                           config_.flits_per_microsecond);
    result_.saturation_onset_cycle = monitor_->saturation_onset_cycle();
    result_.fault_onset_cycle = monitor_->fault_onset_cycle();
  }
  if (prof_ != nullptr) result_.phase_profile = profiler_->profile();
  if (validator_ != nullptr) validator_->check_final(result_);
  return result_;
}

}  // namespace wormsim::sim
