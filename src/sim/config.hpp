// Simulation run parameters (Section 5 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/flow_control/scheme.hpp"
#include "telemetry/config.hpp"

namespace wormsim::sim {

/// Order in which waiting headers are offered output lanes each cycle.
/// The paper does not specify a discipline; kRotating (the default) gives
/// every input a fair share of first pick, kRandom re-draws the order
/// every cycle, kFixed always scans in lane-id order (deliberately
/// unfair; exists to measure how much the choice matters).
enum class ArbitrationOrder : std::uint8_t { kRotating, kRandom, kFixed };

/// How a header picks among its free candidate lanes.  The paper says
/// packets are "randomly distributed to one of the free channels"
/// (kRandomFree); kFirstFree is the deterministic alternative.
enum class LaneSelection : std::uint8_t { kRandomFree, kFirstFree };

struct SimConfig {
  std::uint64_t seed = 1;

  ArbitrationOrder arbitration = ArbitrationOrder::kRotating;
  LaneSelection lane_selection = LaneSelection::kRandomFree;

  /// Cycles before measurement starts (network reaches steady state).
  std::uint64_t warmup_cycles = 60'000;
  /// Measurement window length.
  std::uint64_t measure_cycles = 240'000;
  /// Extra cycles after the window so in-flight measured messages can
  /// finish and report their latency.
  std::uint64_t drain_cycles = 60'000;

  /// "The throughput is considered sustainable when the number of messages
  /// queued at their source nodes does not exceed some small limit, 100 in
  /// the simulations."
  std::uint64_t sustainable_queue_limit = 100;

  /// Hard cap on a source queue; beyond it new arrivals are dropped and
  /// counted.  Only reached far past saturation, where the run is already
  /// marked unsustainable.
  std::uint64_t queue_capacity = 1'500;

  /// Channel bandwidth: 20 flits/microsecond, i.e. 1 cycle = 0.05 us.
  double flits_per_microsecond = 20.0;

  // ---- Flow control (src/sim/flow_control/) ---------------------------
  // The defaults reproduce the paper's model bitwise: credit-based
  // wormhole with single-flit buffers and instant credit return is
  // algebraically the legacy "send when the downstream buffer is empty"
  // engine (pinned by tests/golden_test.cpp).

  /// Input-buffer slots per lane, in flits (paper: 1).  The
  /// store-and-forward engine interprets this in packets per lane
  /// buffer (its natural buffering unit).
  std::uint32_t buffer_depth = 1;
  /// Buffer-management scheme governing when a sender may push a flit.
  FlowControlScheme flow_control = FlowControlScheme::kCredit;
  /// Cycles a credit return (or on/off signal) travels upstream; 0 means
  /// the sender sees the freed slot the same cycle it frees.
  std::uint32_t credit_delay = 0;

  /// Cycles without any flit movement (while flits are in flight) before
  /// the engine declares a deadlock and aborts.  Wormhole routing in these
  /// networks is deadlock-free, so this is purely a watchdog.
  std::uint64_t deadlock_watchdog_cycles = 50'000;

  /// Collect per-physical-channel busy-cycle counters (used by the
  /// partitioning experiments; small overhead).
  bool record_channel_utilization = false;

  /// Telemetry collection (per-lane counters, interval sampling); all off
  /// by default and near-free when off.  Results land in
  /// SimResult::telemetry_counters / telemetry_samples.
  telemetry::TelemetryConfig telemetry;

  /// Advance-team width for THIS simulation point (distinct from the
  /// sweep scheduler's worker pool, which parallelizes across points).
  /// 1 = sequential (default); 0 = one domain per hardware thread; N > 1
  /// is clamped to the hardware concurrency.  Results are bitwise
  /// identical at every width (DESIGN.md §12); networks that are not
  /// feed-forward in channel ids (BMIN) silently fall back to
  /// sequential.  Also settable via WORMSIM_ENGINE_THREADS /
  /// --engine-threads.
  std::uint32_t engine_threads = 1;
  /// Testing hook: skip the hardware-concurrency clamp so determinism
  /// tests exercise real multi-domain teams on any host.
  bool engine_threads_exact = false;

  /// Runtime invariant checking (src/sim/validate.hpp): a read-only
  /// structural sweep every cycle plus an end-of-run reconcile, aborting
  /// with a precise diagnostic on the first violation.  Also enabled by
  /// the WORMSIM_VALIDATE=1 environment variable.  Roughly halves
  /// simulation speed; simulation results are bitwise unchanged.
  bool validate = false;

  /// Compute topology records on the fly from digit-permutation
  /// arithmetic instead of materializing the O(N log N) Network graph
  /// (src/topology/implicit.hpp, DESIGN.md §13) — the 2M-node memory
  /// lever.  Simulation results are bitwise identical to the
  /// materialized backend (pinned by tests/implicit_test.cpp), so this
  /// knob is excluded from result-cache fingerprints like
  /// engine_threads.  Networks the implicit backend cannot express
  /// (random multibutterfly wiring) silently fall back to the
  /// materialized graph.  Also settable via WORMSIM_IMPLICIT_TOPOLOGY /
  /// --implicit-topology.
  bool implicit_topology = false;

  // ---- Runtime fault injection (src/sim/fault_injection/) -------------
  // DESIGN.md §14.  Zero-fault configs (fraction 0 and no explicit plan)
  // are bitwise identical to the fault-free engine (pinned by
  // tests/fault_injection_test.cpp against the golden digests).

  /// Probability each interior (switch<->switch) channel dies, drawn
  /// once per channel from Rng(fault_seed) — never from the traffic
  /// stream's RNG.  0 (default) disables fault injection.  Also
  /// settable via WORMSIM_FAULT_FRACTION / --fault-fraction.
  double fault_fraction = 0.0;
  /// Dedicated seed for the fault plan draw, so fault scenarios vary
  /// independently of traffic seeds.  Also settable via
  /// WORMSIM_FAULT_SEED / --fault-seed.
  std::uint64_t fault_seed = 1;
  /// Cycle the kill lands (start of cycle, before arrivals); 0 = the
  /// channels are dead from the first cycle.  Also settable via
  /// WORMSIM_FAULT_AT_CYCLE / --fault-at-cycle.
  std::uint64_t fault_at_cycle = 0;
  /// Cycle the faulted channels come back, ~0 (default) = permanent.
  /// Test/API-only knob — not exposed on the CLI.
  std::uint64_t fault_repair_cycle = ~std::uint64_t{0};

  std::uint64_t total_cycles() const {
    return warmup_cycles + measure_cycles + drain_cycles;
  }
  double microseconds(double cycles) const {
    return cycles / flits_per_microsecond;
  }
};

}  // namespace wormsim::sim
