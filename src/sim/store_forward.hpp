// Store-and-forward (packet-switching) reference engine.
//
// Section 1 of the paper contrasts wormhole switching with the
// packet-switched MINs of the earlier literature (refs [4], [5], [6]):
// under store-and-forward a packet is buffered *entirely* at every switch
// before moving on, so zero-load latency is path_length x packet_length
// cycles instead of wormhole's path_length + packet_length - 1 — latency
// is distance-SENSITIVE.  This engine makes that contrast measurable on
// the exact same Network/Router substrate.
//
// Model: event-driven at packet granularity.  Each virtual-channel lane
// owns a FIFO buffer of `buffer_packets` whole packets at its downstream
// end.  A transfer occupies the physical channel for `length` cycles and
// reserves one downstream slot; the packet continues to occupy its
// upstream slot until the transfer completes (classic store-and-forward).
// Output selection uses the same Router candidates and uniform random
// choice as the wormhole engine.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "routing/router.hpp"
#include "sim/fault_injection/state.hpp"
#include "sim/metrics.hpp"
#include "sim/packet.hpp"
#include "sim/traffic_source.hpp"
#include "telemetry/config.hpp"
#include "topology/net_view.hpp"
#include "util/rng.hpp"

namespace wormsim::telemetry {
class WormTracer;
}

namespace wormsim::sim {

class StoreForwardValidator;
struct StoreForwardTestPeer;

struct StoreForwardConfig {
  std::uint64_t seed = 1;
  /// Whole-packet buffers per lane.
  std::uint32_t buffer_packets = 1;
  std::uint64_t warmup_cycles = 40'000;
  std::uint64_t measure_cycles = 160'000;
  std::uint64_t drain_cycles = 80'000;
  std::uint64_t sustainable_queue_limit = 100;
  std::uint64_t queue_capacity = 1'500;
  double flits_per_microsecond = 20.0;
  /// Runtime invariant checking (src/sim/validate.hpp): per-event sweeps
  /// and transfer legality checks, aborting with a diagnostic on the
  /// first violation.  Also enabled by WORMSIM_VALIDATE=1.
  bool validate = false;
  /// Runtime fault injection (DESIGN.md §14), mirroring SimConfig: a
  /// seed-driven fraction of interior channels dies at fault_at_cycle.
  /// Kill semantics are packet-granular here — a dead channel's lane
  /// buffers discard their queued packets (terminated, all flits
  /// truncated), transfers completing onto a dead channel terminate on
  /// arrival, and a queued packet whose every legal next hop is dead is
  /// terminated instead of parked forever.
  double fault_fraction = 0.0;
  std::uint64_t fault_seed = 1;
  std::uint64_t fault_at_cycle = 0;
  std::uint64_t fault_repair_cycle = kNoCycle;
  /// `worm_trace` (WORMSIM_TRACE=1) and the heartbeat knobs
  /// (`heartbeat_cycles` / WORMSIM_HEARTBEAT, `heartbeat_dir`,
  /// `heartbeat_tag`) are honored here; the counter/sampling hooks and
  /// the phase profiler are wormhole-engine features (the event-driven
  /// reference has no per-cycle phase structure to attribute).
  telemetry::TelemetryConfig telemetry;
  /// Accepted for experiment-config symmetry with SimConfig and ignored:
  /// the event-driven reference engine is inherently sequential.  Sweeps
  /// can therefore set one engine-thread knob for a mixed wormhole/SF
  /// point list without special-casing.
  std::uint32_t engine_threads = 1;
};

class StoreForwardEngine {
 public:
  StoreForwardEngine(const topology::NetView& network,
                     const routing::Router& router, TrafficSource* traffic,
                     StoreForwardConfig config);
  /// Out of line: StoreForwardValidator is incomplete here.
  ~StoreForwardEngine();

  /// Queues a message at its source at the given time (>= current time).
  PacketId inject_message(topology::NodeId src, std::uint64_t dst,
                          std::uint32_t length, std::uint64_t when = 0);

  /// Runs warmup + measurement + drain (with traffic), collecting metrics.
  SimResult run();

  /// Processes events until nothing is queued or in flight; returns true
  /// when fully drained before `max_time`.
  bool run_until_idle(std::uint64_t max_time);

  const PacketState& packet(PacketId id) const { return packets_.at(id); }
  std::uint64_t now() const { return now_; }

  /// Non-null when per-packet tracing is on (telemetry.worm_trace or
  /// WORMSIM_TRACE=1); also shared into SimResult::worm_trace.
  const telemetry::WormTracer* worm_tracer() const { return wtrace_; }

  /// Non-null when streaming heartbeats are on (telemetry.heartbeat_cycles
  /// or WORMSIM_HEARTBEAT).  The event-driven engine emits at the latest
  /// crossed cadence boundary before each event, merging windows no event
  /// landed in.
  const telemetry::RunMonitor* run_monitor() const { return monitor_; }

  /// Replaces the fault plan before any event has been processed
  /// (tests / callers that need an exact channel set rather than a
  /// seeded fraction).  Must be called at time 0 with no faults applied.
  void set_fault_plan(fault_injection::FaultPlan plan);
  const fault_injection::FaultPlan& fault_plan() const {
    return fault_state_.plan;
  }

 private:
  /// Read-only invariant checker (src/sim/validate.hpp); fault-injection
  /// tests reach private state through StoreForwardTestPeer.
  friend class StoreForwardValidator;
  friend struct StoreForwardTestPeer;
  struct Event {
    std::uint64_t time;
    enum class Kind : std::uint8_t {
      kArrivalGen,    ///< node draws its next message (payload = node)
      kTransferDone,  ///< a channel transfer completes (payload = transfer)
      kInject         ///< a manually injected packet enters its queue
    } kind;
    std::uint64_t payload;

    bool operator>(const Event& other) const { return time > other.time; }
  };

  struct Transfer {
    PacketId packet;
    topology::LaneId from;  ///< kInvalidId when leaving the source node
    topology::LaneId to;
  };

  struct LaneState {
    std::deque<PacketId> queue;  ///< fully received packets, FIFO
    std::uint32_t incoming = 0;  ///< slots reserved by in-flight transfers
    bool transmitting = false;   ///< head packet is being forwarded
  };

  struct NodeState {
    std::deque<PacketId> queue;
    bool transmitting = false;
    bool active = false;
  };

  bool in_measure_window() const {
    return now_ >= config_.warmup_cycles &&
           now_ < config_.warmup_cycles + config_.measure_cycles;
  }

  void schedule(std::uint64_t time, Event::Kind kind, std::uint64_t payload);
  void process(const Event& event);
  /// Tries to start transfers everywhere marked pending.  Within one pump
  /// a start only ever *disables* other starts (the channel becomes busy,
  /// a downstream slot is reserved, the sender turns busy), so a single
  /// pass over the pending sets — nodes ascending, then lanes ascending,
  /// the original full-scan order — reaches the fixpoint.
  void pump();
  /// Marks the entities a state change may have enabled; every gating
  /// condition flip re-marks, so the pending sets stay a superset of the
  /// startable entities (see DESIGN.md "Engine hot loop").
  void mark_node_pending(topology::NodeId node) {
    if (!node_pending_flag_[node]) {
      node_pending_flag_[node] = 1;
      pending_nodes_.push_back(node);
    }
  }
  void mark_lane_pending(topology::LaneId lane) {
    if (!lane_pending_flag_[lane]) {
      lane_pending_flag_[lane] = 1;
      pending_lanes_.push_back(lane);
    }
  }
  /// Marks everything that may transfer across `channel` (called when the
  /// channel frees up or its destination buffer gains a slot).
  void mark_channel_users(topology::ChannelId channel);
  bool try_start_from_node(topology::NodeId node);
  bool try_start_from_lane(topology::LaneId lane);
  bool start_transfer(PacketId pkt, topology::LaneId from,
                      topology::LaneId to);
  void finish_transfer(const Transfer& transfer);
  void deliver(PacketId pkt);
  /// Discards a packet killed by fault injection: stamps the terminate
  /// cycle, truncates every flit (packet granularity — the whole packet
  /// sat in the dead buffer) and accounts it.  Queue bookkeeping is the
  /// caller's job.
  void terminate_packet(PacketId pkt);
  void apply_fault_plan();
  void repair_fault_plan();
  bool lane_has_space(topology::LaneId lane) const;
  bool idle() const;
  /// Deterministic heartbeat snapshot at cadence boundary `cycle`
  /// (packet-granular counters; stage occupancy counts buffered packets).
  telemetry::HeartbeatSnapshot heartbeat_snapshot(std::uint64_t cycle) const;
  /// Emits heartbeats for every cadence boundary now_ has crossed since
  /// the last emission (merged into one line at the latest boundary).
  void maybe_heartbeat();

  const topology::NetView network_;
  const routing::Router& router_;
  TrafficSource* traffic_;
  StoreForwardConfig config_;
  util::Rng rng_;

  std::uint64_t now_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  // Channel-free marks ordered by time.  "Free" is the time comparison
  // channel_free_at_ <= now_, so a channel becomes usable the moment now_
  // reaches its free time — possibly while its kTransferDone event is
  // still behind other same-timestamp events in the heap.  Draining this
  // calendar at the top of process() makes the mark visible to the first
  // pump at that timestamp, like the original every-event full scan.
  std::priority_queue<std::pair<std::uint64_t, topology::ChannelId>,
                      std::vector<std::pair<std::uint64_t,
                                            topology::ChannelId>>,
                      std::greater<>>
      free_calendar_;
  std::vector<Transfer> transfers_;  // indexed by payload of kTransferDone

  std::vector<PacketState> packets_;
  std::vector<NodeState> nodes_;
  std::vector<LaneState> lanes_;
  std::vector<std::uint64_t> channel_free_at_;
  /// Dead physical channels (fault injection); drained lazily at the top
  /// of process() once now_ reaches the plan's kill / repair cycles.
  std::vector<std::uint8_t> channel_faulty_;
  fault_injection::FaultState fault_state_;
  /// Latched true once any channel has ever faulted (stays true across a
  /// repair) so the validator knows terminated packets may exist.
  bool fault_any_ = false;
  std::int64_t in_flight_ = 0;
  std::int64_t queued_packets_ = 0;  ///< packets in node + lane queues

  // Active sets: entities whose gating conditions may have flipped since
  // the last pump, plus the static feeder map (input lanes per switch)
  // used to expand channel-freed / slot-freed events.
  std::vector<std::vector<topology::LaneId>> switch_feed_lanes_;
  std::vector<topology::NodeId> pending_nodes_;
  std::vector<topology::LaneId> pending_lanes_;
  std::vector<std::uint8_t> node_pending_flag_;
  std::vector<std::uint8_t> lane_pending_flag_;

  std::unique_ptr<StoreForwardValidator> validator_;

  // Per-packet lifecycle tracer (telemetry/worm_trace.hpp), null-gated
  // like the wormhole engine's hooks.
  std::shared_ptr<telemetry::WormTracer> worm_tracer_;
  telemetry::WormTracer* wtrace_ = nullptr;

  // Streaming heartbeat monitor (telemetry/run_monitor.hpp, DESIGN.md
  // §15), null-gated.  hb_next_ is the next cadence boundary to emit at;
  // the event-driven clock jumps, so one emission may cover several
  // merged windows.
  std::unique_ptr<telemetry::RunMonitor> run_monitor_;
  telemetry::RunMonitor* monitor_ = nullptr;
  std::uint64_t hb_interval_ = 0;
  std::uint64_t hb_next_ = 0;
  std::vector<std::vector<std::pair<topology::LaneId, topology::LaneId>>>
      hb_stage_intervals_;
  std::uint64_t delivered_flits_total_ = 0;

  SimResult result_;
};

}  // namespace wormsim::sim
