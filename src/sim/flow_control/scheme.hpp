// Flow-control schemes for the finite-buffer wormhole engine.
//
// The paper's engine hard-codes single-flit input buffers: a lane can
// accept a flit exactly when its one buffer slot is empty.  This
// subsystem generalizes that to per-lane input FIFOs of configurable
// depth governed by one of three buffer-management schemes (the same
// layering Graphite's flow_control_schemes/ uses):
//
//   kCredit             The sender holds a credit counter initialized to
//                       the buffer depth; sending a flit consumes one
//                       credit and popping a flit downstream returns one
//                       after `credit_delay` cycles.  With depth 1 and
//                       delay 0 this is *exactly* the paper's single-flit
//                       wormhole (golden digests bitwise unchanged).
//   kOnOff              The receiver sends STOP when occupancy rises to
//                       depth - credit_delay and GO when it drains to the
//                       hysteresis threshold; signals travel upstream in
//                       `credit_delay` cycles.  Cheaper wiring than
//                       credits, coarser: the sender idles through the
//                       hysteresis band.
//   kVirtualCutThrough  Credit-based, but a header is only granted an
//                       output lane when the downstream FIFO has room for
//                       the *whole* packet, so a blocked worm always
//                       absorbs into one buffer instead of spanning
//                       switches.  Requires buffer_depth >= packet length.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace wormsim::sim {

enum class FlowControlScheme : std::uint8_t {
  kCredit,
  kOnOff,
  kVirtualCutThrough,
};

/// Stable lowercase name ("credit", "onoff", "vct"); used by CLI flags,
/// cache fingerprints, and JSON results.
const char* to_string(FlowControlScheme scheme);

/// Inverse of to_string; nullopt for an unknown name.
std::optional<FlowControlScheme> parse_flow_control(std::string_view name);

}  // namespace wormsim::sim
