// Per-lane buffer and backpressure state for the flow-control subsystem.
//
// The engine's legacy per-lane head arrays (buf_packet_ / buf_seq_ /
// arrived_epoch_) stay the *head slot* of every lane FIFO: slot 0 lives
// at a fixed index, so every consumer that reasons about "the buffered
// flit of lane L" — the validator, the test peers, buffered_packet() —
// keeps its exact semantics, and a depth-1 run never touches the
// extension storage at all.  FlowControlState owns everything beyond
// that head slot:
//
//   * extension slots: positions 1..depth-1 of each lane FIFO (oldest
//     first), each carrying the epoch it arrived in so a flit pushed and
//     promoted to head in the same cycle still waits a cycle;
//   * the sender-side gates: credit counters (kCredit /
//     kVirtualCutThrough) or stop bits (kOnOff);
//   * the in-flight backpressure events — credit returns or on/off
//     signals travelling upstream for `delay` cycles.  Events are pushed
//     with nondecreasing due cycles, so a plain deque is the calendar;
//   * per-lane credit-starvation interval clocks (engine.cpp opens and
//     closes them; telemetry/worm_trace.hpp consumes the attribution).
//
// All mutation happens in the engine's hot loop; this struct only
// provides the storage and the small pure helpers, keeping the
// scheme-specific arithmetic in one place.
//
// Like the rest of the engine's hot state, everything here is lane-major
// structure-of-arrays (DESIGN.md §12): parallel flat vectors indexed by
// LaneId, with the extension slots flattened lane-major behind them.
// Under the domain-partitioned parallel advance each entry belongs to
// exactly one channel's domain (a lane's owning channel decides its
// writes), so phase-A threads never share a cache line's worth of
// *logical* state — and mutation stays confined to phase B's canonical
// sequential merge plus the domain-owned starvation clocks.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/flow_control/scheme.hpp"
#include "sim/packet.hpp"
#include "topology/network.hpp"
#include "util/check.hpp"

namespace wormsim::sim {

/// One backpressure event in flight toward a sender.  For credit schemes
/// it returns one credit for `lane`; for on/off it delivers the latest
/// stop/go decision (`go` = resume sending).
struct FlowControlEvent {
  std::uint64_t due = 0;  ///< first cycle the sender can act on it
  topology::LaneId lane = topology::kInvalidId;
  bool go = false;  ///< on/off only; ignored by credit returns
};

struct FlowControlState {
  FlowControlScheme scheme = FlowControlScheme::kCredit;
  std::uint32_t depth = 1;  ///< input-buffer slots per lane, in flits
  std::uint32_t delay = 0;  ///< cycles a credit / on-off signal travels
  /// kOnOff: STOP is emitted when occupancy *rises to* off_threshold
  /// (depth - delay, so the flits already in flight still fit) and GO
  /// when it *drains to* on_threshold (half the stop level, the
  /// hysteresis band that keeps the signal wire quiet).
  std::uint32_t off_threshold = 1;
  std::uint32_t on_threshold = 0;

  /// Flits buffered per lane across head + extension slots.  A lane's
  /// head slot is occupied iff count[lane] > 0.
  std::vector<std::uint32_t> count;
  /// Sender-visible free slots per lane (kCredit / kVirtualCutThrough).
  std::vector<std::uint32_t> credits;
  /// Last delivered on/off signal per lane (kOnOff); 1 = STOP.
  std::vector<std::uint8_t> stopped;

  // Extension slots, lane-major: slot s of lane L (holding the (s+1)-th
  // oldest flit) lives at index L * (depth - 1) + s.  Unoccupied slots
  // hold kNoPacket so the validator can re-derive occupancy exactly.
  std::vector<PacketId> ext_packet;
  std::vector<std::uint32_t> ext_seq;
  std::vector<std::uint64_t> ext_epoch;

  /// Backpressure calendar; front() is always the earliest due event.
  std::deque<FlowControlEvent> events;

  /// Cycle each lane's open credit-starvation interval began, kNoCycle
  /// when closed.  Starvation = a sender gated by flow control while the
  /// downstream FIFO has space (credits still in flight, or an on/off
  /// GO pending / hysteresis pause) — distinct from a full buffer, which
  /// is ordinary wormhole backpressure.  Always zero for the legacy
  /// depth-1 / delay-0 credit configuration.
  std::vector<std::uint64_t> starve_since;

  void configure(std::size_t lane_count, FlowControlScheme s,
                 std::uint32_t buffer_depth, std::uint32_t credit_delay);

  /// Sender gate for pushing one flit into `lane`'s input FIFO.  Only
  /// meaningful for switch-destined lanes (ejection consumes instantly).
  bool can_accept(topology::LaneId lane) const {
    return scheme == FlowControlScheme::kOnOff ? stopped[lane] == 0
                                               : credits[lane] > 0;
  }

  /// kVirtualCutThrough grant gate: room for the whole packet.
  bool can_accept_packet(topology::LaneId lane, std::uint32_t length) const {
    return credits[lane] >= length;
  }

  std::size_t ext_base(topology::LaneId lane) const {
    return static_cast<std::size_t>(lane) * (depth - 1);
  }

  /// Credit returns still travelling toward `lane`'s sender (O(events)).
  std::uint32_t pending_returns(topology::LaneId lane) const {
    std::uint32_t pending = 0;
    for (const FlowControlEvent& ev : events) pending += ev.lane == lane;
    return pending;
  }
};

}  // namespace wormsim::sim
