#include "sim/flow_control/state.hpp"

#include <cstring>

namespace wormsim::sim {

const char* to_string(FlowControlScheme scheme) {
  switch (scheme) {
    case FlowControlScheme::kCredit: return "credit";
    case FlowControlScheme::kOnOff: return "onoff";
    case FlowControlScheme::kVirtualCutThrough: return "vct";
  }
  return "?";
}

std::optional<FlowControlScheme> parse_flow_control(std::string_view name) {
  if (name == "credit") return FlowControlScheme::kCredit;
  if (name == "onoff" || name == "on_off" || name == "on-off") {
    return FlowControlScheme::kOnOff;
  }
  if (name == "vct" || name == "cut-through" || name == "cut_through") {
    return FlowControlScheme::kVirtualCutThrough;
  }
  return std::nullopt;
}

void FlowControlState::configure(std::size_t lane_count, FlowControlScheme s,
                                 std::uint32_t buffer_depth,
                                 std::uint32_t credit_delay) {
  scheme = s;
  depth = buffer_depth;
  delay = credit_delay;
  WORMSIM_CHECK_MSG(depth >= 1, "buffer_depth must be at least one flit");
  if (scheme == FlowControlScheme::kOnOff) {
    // STOP must leave room for the flits a sender can still emit while
    // the signal travels, or the buffer overflows.
    WORMSIM_CHECK_MSG(depth > delay,
                      "on/off flow control needs buffer_depth > credit_delay");
    off_threshold = depth - delay;
    on_threshold = off_threshold / 2;
  } else {
    off_threshold = depth;
    on_threshold = 0;
  }
  count.assign(lane_count, 0);
  credits.assign(lane_count, depth);
  stopped.assign(lane_count, 0);
  if (depth > 1) {
    const std::size_t slots = lane_count * (depth - 1);
    ext_packet.assign(slots, kNoPacket);
    ext_seq.assign(slots, 0);
    ext_epoch.assign(slots, 0);
  } else {
    ext_packet.clear();
    ext_seq.clear();
    ext_epoch.clear();
  }
  events.clear();
  starve_since.assign(lane_count, kNoCycle);
}

}  // namespace wormsim::sim
