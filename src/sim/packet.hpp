// Packet bookkeeping for the wormhole engine.
#pragma once

#include <cstdint>

#include "topology/network.hpp"

namespace wormsim::sim {

using PacketId = std::uint32_t;
inline constexpr PacketId kNoPacket = topology::kInvalidId;
inline constexpr std::uint64_t kNoCycle = ~std::uint64_t{0};

/// Lifetime record of one message.  The paper treats packets and messages
/// interchangeably (no packetization), and so do we.
struct PacketState {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint32_t length = 0;  ///< flits
  /// BMIN: FirstDifference(src, dst), where the worm turns around.
  unsigned turn_stage = 0;
  std::uint64_t create_cycle = kNoCycle;   ///< entered the source queue
  std::uint64_t inject_cycle = kNoCycle;   ///< header flit entered network
  std::uint64_t deliver_cycle = kNoCycle;  ///< tail flit consumed
  /// Cycle the worm was killed by fault injection (DESIGN.md §14);
  /// kNoCycle for every packet in a fault-free run.
  std::uint64_t terminate_cycle = kNoCycle;
  /// Flits the source had sent when the kill landed (= length once the
  /// tail left the source).  Terminated packets only.
  std::uint32_t flits_sent_at_kill = 0;
  /// In-network flits discarded by the kill; flits_sent_at_kill minus
  /// flits already ejected.  Terminated packets only.
  std::uint32_t flits_truncated = 0;
  bool measured = false;  ///< created inside the measurement window

  bool delivered() const { return deliver_cycle != kNoCycle; }
  bool terminated() const { return terminate_cycle != kNoCycle; }
};

}  // namespace wormsim::sim
