#include "sim/fault_injection/state.hpp"

#include "util/check.hpp"

namespace wormsim::sim::fault_injection {

void validate_plan(const topology::NetView& view, const FaultPlan& plan) {
  if (plan.empty()) return;
  if (plan.repair_cycle != kNoCycle) {
    WORMSIM_CHECK_MSG(plan.repair_cycle > plan.at_cycle,
                      "fault repair must come after the kill");
  }
  topology::ChannelId prev = topology::kInvalidId;
  for (const topology::ChannelId id : plan.channels) {
    WORMSIM_CHECK_MSG(id < view.channel_count(),
                      "fault plan channel id out of range");
    WORMSIM_CHECK_MSG(prev == topology::kInvalidId || id > prev,
                      "fault plan channels must be sorted unique");
    const topology::PhysChannel ch = view.channel(id);
    WORMSIM_CHECK_MSG(ch.src.is_switch() && ch.dst.is_switch(),
                      "fault plans may only kill switch<->switch "
                      "channels");
    prev = id;
  }
}

}  // namespace wormsim::sim::fault_injection
