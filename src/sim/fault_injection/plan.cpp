#include "sim/fault_injection/plan.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wormsim::sim::fault_injection {

namespace {

bool is_interior(const topology::PhysChannel& ch) {
  return ch.src.is_switch() && ch.dst.is_switch();
}

void insert_sorted_unique(std::vector<topology::ChannelId>& channels,
                          topology::ChannelId id) {
  const auto it = std::lower_bound(channels.begin(), channels.end(), id);
  if (it != channels.end() && *it == id) return;
  channels.insert(it, id);
}

}  // namespace

FaultPlan build_fault_plan(const topology::NetView& view, double fraction,
                           std::uint64_t seed, std::uint64_t at_cycle,
                           std::uint64_t repair_cycle) {
  FaultPlan plan;
  plan.at_cycle = at_cycle;
  plan.repair_cycle = repair_cycle;
  if (fraction <= 0.0) return plan;
  WORMSIM_CHECK_MSG(fraction <= 1.0, "fault fraction must be in [0, 1]");
  // One Bernoulli draw per interior channel in ascending id order: the
  // dead set depends only on (topology, fraction, seed), never on the
  // backend or the traffic stream.
  util::Rng rng(seed);
  view.for_each_channel([&](const topology::PhysChannel& ch) {
    if (!is_interior(ch)) return;
    if (rng.chance(fraction)) plan.channels.push_back(ch.id);
  });
  return plan;
}

void add_channel_kill(FaultPlan& plan, const topology::NetView& view,
                      topology::ChannelId channel) {
  WORMSIM_CHECK(channel < view.channel_count());
  const topology::PhysChannel ch = view.channel(channel);
  WORMSIM_CHECK_MSG(is_interior(ch),
                    "only switch<->switch channels can fault: a dead "
                    "node link just removes the one-port node");
  insert_sorted_unique(plan.channels, channel);
}

void add_switch_kill(FaultPlan& plan, const topology::NetView& view,
                     topology::SwitchId sw) {
  WORMSIM_CHECK(sw < view.switch_count());
  view.for_each_channel([&](const topology::PhysChannel& ch) {
    if (!is_interior(ch)) return;
    if ((ch.src.is_switch() && ch.src.id == sw) ||
        (ch.dst.is_switch() && ch.dst.id == sw)) {
      insert_sorted_unique(plan.channels, ch.id);
    }
  });
}

}  // namespace wormsim::sim::fault_injection
