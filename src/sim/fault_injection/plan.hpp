// Deterministic runtime fault plans (ROADMAP item 5, DESIGN.md §14).
//
// A FaultPlan is the full description of one fault scenario: the set of
// interior (switch<->switch) channels to kill, the cycle the kill lands,
// and an optional repair cycle.  Plans are built *before* the run from a
// dedicated seed — never from the engine's traffic RNG — so the same
// (topology, fraction, seed) triple names the same dead-channel set on
// every engine, thread width, and backend, and the static
// `analysis::fault_coverage` cross-check can be computed from the very
// same channel list the engines kill at runtime.
//
// Only interior channels are ever faulted: a dead injection or ejection
// link just removes the node from the experiment, which says nothing
// about the network (engine::fail_channel enforces the same rule).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "topology/net_view.hpp"

namespace wormsim::sim::fault_injection {

struct FaultPlan {
  /// Interior channel ids to kill, sorted ascending, unique.
  std::vector<topology::ChannelId> channels;
  /// Cycle the kill is applied (start of the cycle, before arrivals).
  std::uint64_t at_cycle = 0;
  /// Cycle the channels come back, kNoCycle for a permanent fault.
  std::uint64_t repair_cycle = kNoCycle;

  bool empty() const { return channels.empty(); }
};

/// Seed-driven plan: every switch<->switch channel dies independently
/// with probability `fraction`, drawn from a dedicated Rng(seed) in
/// ascending channel-id order (backend-independent).  `fraction <= 0`
/// returns an empty plan; repair_cycle = kNoCycle means no repair.
FaultPlan build_fault_plan(const topology::NetView& view, double fraction,
                           std::uint64_t seed, std::uint64_t at_cycle,
                           std::uint64_t repair_cycle = kNoCycle);

/// Adds one interior channel to `plan` (keeps the list sorted unique).
/// Aborts on injection/ejection channels, mirroring engine::fail_channel.
void add_channel_kill(FaultPlan& plan, const topology::NetView& view,
                      topology::ChannelId channel);

/// Kills a whole switch: every interior channel whose src or dst is
/// `sw`.  Injection/ejection links of attached nodes are left alive —
/// their worms die at the switch, which is the observable effect.
void add_switch_kill(FaultPlan& plan, const topology::NetView& view,
                     topology::SwitchId sw);

}  // namespace wormsim::sim::fault_injection
