// Runtime bookkeeping for applying a FaultPlan mid-run (DESIGN.md §14).
//
// The engines own the actual kill mechanics (truncating in-flight worms,
// releasing allocations, crediting drained buffer slots); FaultState only
// tracks *when* the plan's two transitions fire so both engines and every
// thread width agree on the cycle boundaries: the kill lands at the start
// of plan.at_cycle (before arrivals, after the backpressure calendar
// drains), the repair at the start of plan.repair_cycle.
#pragma once

#include <cstdint>

#include "sim/fault_injection/plan.hpp"

namespace wormsim::sim::fault_injection {

struct FaultState {
  FaultPlan plan;
  bool applied = false;   ///< kill transition has fired
  bool repaired = false;  ///< repair transition has fired

  /// True exactly once: the first step whose cycle reached at_cycle.
  bool kill_due(std::uint64_t cycle) const {
    return !applied && !plan.empty() && cycle >= plan.at_cycle;
  }
  /// True exactly once after the kill, when repair_cycle is reached.
  bool repair_due(std::uint64_t cycle) const {
    return applied && !repaired && plan.repair_cycle != kNoCycle &&
           cycle >= plan.repair_cycle;
  }
  /// Channels are currently dead.
  bool active() const { return applied && !repaired; }
};

/// Aborts unless `plan` is well-formed for `view`: channel ids in range,
/// sorted ascending, unique, interior-only, and repair (if any) after the
/// kill.  Engines call this once at construction / set_fault_plan time.
void validate_plan(const topology::NetView& view, const FaultPlan& plan);

}  // namespace wormsim::sim::fault_injection
