# Empty dependencies file for worm_traffic.
# This may be replaced when dependencies are built.
