file(REMOVE_RECURSE
  "libworm_traffic.a"
)
