file(REMOVE_RECURSE
  "CMakeFiles/worm_traffic.dir/workload.cpp.o"
  "CMakeFiles/worm_traffic.dir/workload.cpp.o.d"
  "libworm_traffic.a"
  "libworm_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
