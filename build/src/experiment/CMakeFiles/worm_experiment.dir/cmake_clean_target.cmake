file(REMOVE_RECURSE
  "libworm_experiment.a"
)
