# Empty compiler generated dependencies file for worm_experiment.
# This may be replaced when dependencies are built.
