file(REMOVE_RECURSE
  "CMakeFiles/worm_experiment.dir/figures.cpp.o"
  "CMakeFiles/worm_experiment.dir/figures.cpp.o.d"
  "CMakeFiles/worm_experiment.dir/parallel.cpp.o"
  "CMakeFiles/worm_experiment.dir/parallel.cpp.o.d"
  "CMakeFiles/worm_experiment.dir/sweep.cpp.o"
  "CMakeFiles/worm_experiment.dir/sweep.cpp.o.d"
  "libworm_experiment.a"
  "libworm_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
