file(REMOVE_RECURSE
  "libworm_routing.a"
)
