# Empty dependencies file for worm_routing.
# This may be replaced when dependencies are built.
