file(REMOVE_RECURSE
  "CMakeFiles/worm_routing.dir/destination_tag.cpp.o"
  "CMakeFiles/worm_routing.dir/destination_tag.cpp.o.d"
  "CMakeFiles/worm_routing.dir/multicast.cpp.o"
  "CMakeFiles/worm_routing.dir/multicast.cpp.o.d"
  "CMakeFiles/worm_routing.dir/router.cpp.o"
  "CMakeFiles/worm_routing.dir/router.cpp.o.d"
  "CMakeFiles/worm_routing.dir/turnaround.cpp.o"
  "CMakeFiles/worm_routing.dir/turnaround.cpp.o.d"
  "libworm_routing.a"
  "libworm_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
