
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/destination_tag.cpp" "src/routing/CMakeFiles/worm_routing.dir/destination_tag.cpp.o" "gcc" "src/routing/CMakeFiles/worm_routing.dir/destination_tag.cpp.o.d"
  "/root/repo/src/routing/multicast.cpp" "src/routing/CMakeFiles/worm_routing.dir/multicast.cpp.o" "gcc" "src/routing/CMakeFiles/worm_routing.dir/multicast.cpp.o.d"
  "/root/repo/src/routing/router.cpp" "src/routing/CMakeFiles/worm_routing.dir/router.cpp.o" "gcc" "src/routing/CMakeFiles/worm_routing.dir/router.cpp.o.d"
  "/root/repo/src/routing/turnaround.cpp" "src/routing/CMakeFiles/worm_routing.dir/turnaround.cpp.o" "gcc" "src/routing/CMakeFiles/worm_routing.dir/turnaround.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/worm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/worm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
