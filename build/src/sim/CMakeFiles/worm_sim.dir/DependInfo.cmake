
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/worm_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/worm_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/multicast_replay.cpp" "src/sim/CMakeFiles/worm_sim.dir/multicast_replay.cpp.o" "gcc" "src/sim/CMakeFiles/worm_sim.dir/multicast_replay.cpp.o.d"
  "/root/repo/src/sim/store_forward.cpp" "src/sim/CMakeFiles/worm_sim.dir/store_forward.cpp.o" "gcc" "src/sim/CMakeFiles/worm_sim.dir/store_forward.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/worm_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/worm_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/worm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/worm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/worm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
