file(REMOVE_RECURSE
  "libworm_sim.a"
)
