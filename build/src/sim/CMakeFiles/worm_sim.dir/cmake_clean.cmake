file(REMOVE_RECURSE
  "CMakeFiles/worm_sim.dir/engine.cpp.o"
  "CMakeFiles/worm_sim.dir/engine.cpp.o.d"
  "CMakeFiles/worm_sim.dir/multicast_replay.cpp.o"
  "CMakeFiles/worm_sim.dir/multicast_replay.cpp.o.d"
  "CMakeFiles/worm_sim.dir/store_forward.cpp.o"
  "CMakeFiles/worm_sim.dir/store_forward.cpp.o.d"
  "CMakeFiles/worm_sim.dir/trace.cpp.o"
  "CMakeFiles/worm_sim.dir/trace.cpp.o.d"
  "libworm_sim.a"
  "libworm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
