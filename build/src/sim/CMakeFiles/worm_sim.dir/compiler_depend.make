# Empty compiler generated dependencies file for worm_sim.
# This may be replaced when dependencies are built.
