# Empty dependencies file for worm_util.
# This may be replaced when dependencies are built.
