file(REMOVE_RECURSE
  "CMakeFiles/worm_util.dir/cli.cpp.o"
  "CMakeFiles/worm_util.dir/cli.cpp.o.d"
  "CMakeFiles/worm_util.dir/radix.cpp.o"
  "CMakeFiles/worm_util.dir/radix.cpp.o.d"
  "CMakeFiles/worm_util.dir/rng.cpp.o"
  "CMakeFiles/worm_util.dir/rng.cpp.o.d"
  "CMakeFiles/worm_util.dir/stats.cpp.o"
  "CMakeFiles/worm_util.dir/stats.cpp.o.d"
  "CMakeFiles/worm_util.dir/table.cpp.o"
  "CMakeFiles/worm_util.dir/table.cpp.o.d"
  "libworm_util.a"
  "libworm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
