file(REMOVE_RECURSE
  "libworm_util.a"
)
