
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analytical.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/analytical.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/analytical.cpp.o.d"
  "/root/repo/src/analysis/bmin_usage.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/bmin_usage.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/bmin_usage.cpp.o.d"
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/deadlock.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/deadlock.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/deadlock.cpp.o.d"
  "/root/repo/src/analysis/equivalence.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/equivalence.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/equivalence.cpp.o.d"
  "/root/repo/src/analysis/fault.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/fault.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/fault.cpp.o.d"
  "/root/repo/src/analysis/path_enum.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/path_enum.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/path_enum.cpp.o.d"
  "/root/repo/src/analysis/utilization.cpp" "src/analysis/CMakeFiles/worm_analysis.dir/utilization.cpp.o" "gcc" "src/analysis/CMakeFiles/worm_analysis.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/worm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/worm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/worm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/worm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
