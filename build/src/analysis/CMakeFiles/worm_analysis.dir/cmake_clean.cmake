file(REMOVE_RECURSE
  "CMakeFiles/worm_analysis.dir/analytical.cpp.o"
  "CMakeFiles/worm_analysis.dir/analytical.cpp.o.d"
  "CMakeFiles/worm_analysis.dir/bmin_usage.cpp.o"
  "CMakeFiles/worm_analysis.dir/bmin_usage.cpp.o.d"
  "CMakeFiles/worm_analysis.dir/cost.cpp.o"
  "CMakeFiles/worm_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/worm_analysis.dir/deadlock.cpp.o"
  "CMakeFiles/worm_analysis.dir/deadlock.cpp.o.d"
  "CMakeFiles/worm_analysis.dir/equivalence.cpp.o"
  "CMakeFiles/worm_analysis.dir/equivalence.cpp.o.d"
  "CMakeFiles/worm_analysis.dir/fault.cpp.o"
  "CMakeFiles/worm_analysis.dir/fault.cpp.o.d"
  "CMakeFiles/worm_analysis.dir/path_enum.cpp.o"
  "CMakeFiles/worm_analysis.dir/path_enum.cpp.o.d"
  "CMakeFiles/worm_analysis.dir/utilization.cpp.o"
  "CMakeFiles/worm_analysis.dir/utilization.cpp.o.d"
  "libworm_analysis.a"
  "libworm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
