file(REMOVE_RECURSE
  "libworm_analysis.a"
)
