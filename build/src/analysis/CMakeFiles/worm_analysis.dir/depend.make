# Empty dependencies file for worm_analysis.
# This may be replaced when dependencies are built.
