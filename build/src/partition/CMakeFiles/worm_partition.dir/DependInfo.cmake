
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/channel_usage.cpp" "src/partition/CMakeFiles/worm_partition.dir/channel_usage.cpp.o" "gcc" "src/partition/CMakeFiles/worm_partition.dir/channel_usage.cpp.o.d"
  "/root/repo/src/partition/cluster.cpp" "src/partition/CMakeFiles/worm_partition.dir/cluster.cpp.o" "gcc" "src/partition/CMakeFiles/worm_partition.dir/cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/worm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/worm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
