file(REMOVE_RECURSE
  "CMakeFiles/worm_partition.dir/channel_usage.cpp.o"
  "CMakeFiles/worm_partition.dir/channel_usage.cpp.o.d"
  "CMakeFiles/worm_partition.dir/cluster.cpp.o"
  "CMakeFiles/worm_partition.dir/cluster.cpp.o.d"
  "libworm_partition.a"
  "libworm_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
