# Empty dependencies file for worm_partition.
# This may be replaced when dependencies are built.
