file(REMOVE_RECURSE
  "libworm_partition.a"
)
