file(REMOVE_RECURSE
  "CMakeFiles/worm_topology.dir/digit_perm.cpp.o"
  "CMakeFiles/worm_topology.dir/digit_perm.cpp.o.d"
  "CMakeFiles/worm_topology.dir/network.cpp.o"
  "CMakeFiles/worm_topology.dir/network.cpp.o.d"
  "CMakeFiles/worm_topology.dir/topology_spec.cpp.o"
  "CMakeFiles/worm_topology.dir/topology_spec.cpp.o.d"
  "libworm_topology.a"
  "libworm_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
