# Empty dependencies file for worm_topology.
# This may be replaced when dependencies are built.
