file(REMOVE_RECURSE
  "libworm_topology.a"
)
