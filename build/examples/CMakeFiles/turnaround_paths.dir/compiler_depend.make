# Empty compiler generated dependencies file for turnaround_paths.
# This may be replaced when dependencies are built.
