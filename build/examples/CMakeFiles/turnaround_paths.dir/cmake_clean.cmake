file(REMOVE_RECURSE
  "CMakeFiles/turnaround_paths.dir/turnaround_paths.cpp.o"
  "CMakeFiles/turnaround_paths.dir/turnaround_paths.cpp.o.d"
  "turnaround_paths"
  "turnaround_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnaround_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
