# Empty dependencies file for cost_study.
# This may be replaced when dependencies are built.
