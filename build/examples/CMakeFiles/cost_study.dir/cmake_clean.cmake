file(REMOVE_RECURSE
  "CMakeFiles/cost_study.dir/cost_study.cpp.o"
  "CMakeFiles/cost_study.dir/cost_study.cpp.o.d"
  "cost_study"
  "cost_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
