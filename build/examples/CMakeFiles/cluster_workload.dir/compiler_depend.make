# Empty compiler generated dependencies file for cluster_workload.
# This may be replaced when dependencies are built.
