file(REMOVE_RECURSE
  "CMakeFiles/cluster_workload.dir/cluster_workload.cpp.o"
  "CMakeFiles/cluster_workload.dir/cluster_workload.cpp.o.d"
  "cluster_workload"
  "cluster_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
