file(REMOVE_RECURSE
  "CMakeFiles/figures_cli.dir/figures_cli.cpp.o"
  "CMakeFiles/figures_cli.dir/figures_cli.cpp.o.d"
  "figures_cli"
  "figures_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
