# Empty compiler generated dependencies file for figures_cli.
# This may be replaced when dependencies are built.
