file(REMOVE_RECURSE
  "CMakeFiles/trace_route.dir/trace_route.cpp.o"
  "CMakeFiles/trace_route.dir/trace_route.cpp.o.d"
  "trace_route"
  "trace_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
