# Empty dependencies file for trace_route.
# This may be replaced when dependencies are built.
