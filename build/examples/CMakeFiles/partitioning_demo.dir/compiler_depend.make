# Empty compiler generated dependencies file for partitioning_demo.
# This may be replaced when dependencies are built.
