file(REMOVE_RECURSE
  "CMakeFiles/partitioning_demo.dir/partitioning_demo.cpp.o"
  "CMakeFiles/partitioning_demo.dir/partitioning_demo.cpp.o.d"
  "partitioning_demo"
  "partitioning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
