# Empty dependencies file for bench_ablation_msgsize.
# This may be replaced when dependencies are built.
