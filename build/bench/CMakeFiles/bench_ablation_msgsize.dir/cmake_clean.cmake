file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_msgsize.dir/bench_ablation_msgsize.cpp.o"
  "CMakeFiles/bench_ablation_msgsize.dir/bench_ablation_msgsize.cpp.o.d"
  "bench_ablation_msgsize"
  "bench_ablation_msgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
