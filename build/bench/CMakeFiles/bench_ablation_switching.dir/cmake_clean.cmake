file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_switching.dir/bench_ablation_switching.cpp.o"
  "CMakeFiles/bench_ablation_switching.dir/bench_ablation_switching.cpp.o.d"
  "bench_ablation_switching"
  "bench_ablation_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
