# Empty dependencies file for bench_ablation_switching.
# This may be replaced when dependencies are built.
