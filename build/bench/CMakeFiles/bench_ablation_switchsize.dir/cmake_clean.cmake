file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_switchsize.dir/bench_ablation_switchsize.cpp.o"
  "CMakeFiles/bench_ablation_switchsize.dir/bench_ablation_switchsize.cpp.o.d"
  "bench_ablation_switchsize"
  "bench_ablation_switchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_switchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
