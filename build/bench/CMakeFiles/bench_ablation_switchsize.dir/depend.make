# Empty dependencies file for bench_ablation_switchsize.
# This may be replaced when dependencies are built.
