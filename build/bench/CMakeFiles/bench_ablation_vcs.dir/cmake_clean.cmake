file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vcs.dir/bench_ablation_vcs.cpp.o"
  "CMakeFiles/bench_ablation_vcs.dir/bench_ablation_vcs.cpp.o.d"
  "bench_ablation_vcs"
  "bench_ablation_vcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
