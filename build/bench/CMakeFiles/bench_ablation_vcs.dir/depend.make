# Empty dependencies file for bench_ablation_vcs.
# This may be replaced when dependencies are built.
