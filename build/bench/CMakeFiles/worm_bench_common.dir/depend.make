# Empty dependencies file for worm_bench_common.
# This may be replaced when dependencies are built.
