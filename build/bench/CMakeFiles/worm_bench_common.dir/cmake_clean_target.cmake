file(REMOVE_RECURSE
  "libworm_bench_common.a"
)
