file(REMOVE_RECURSE
  "CMakeFiles/worm_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/worm_bench_common.dir/bench_common.cpp.o.d"
  "libworm_bench_common.a"
  "libworm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
