# Empty compiler generated dependencies file for bench_ablation_bmin_vc.
# This may be replaced when dependencies are built.
