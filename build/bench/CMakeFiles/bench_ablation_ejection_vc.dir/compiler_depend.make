# Empty compiler generated dependencies file for bench_ablation_ejection_vc.
# This may be replaced when dependencies are built.
