file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ejection_vc.dir/bench_ablation_ejection_vc.cpp.o"
  "CMakeFiles/bench_ablation_ejection_vc.dir/bench_ablation_ejection_vc.cpp.o.d"
  "bench_ablation_ejection_vc"
  "bench_ablation_ejection_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ejection_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
