# Empty dependencies file for bench_ablation_extra_stage.
# This may be replaced when dependencies are built.
