file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extra_stage.dir/bench_ablation_extra_stage.cpp.o"
  "CMakeFiles/bench_ablation_extra_stage.dir/bench_ablation_extra_stage.cpp.o.d"
  "bench_ablation_extra_stage"
  "bench_ablation_extra_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extra_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
