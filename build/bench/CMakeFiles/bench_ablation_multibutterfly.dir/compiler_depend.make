# Empty compiler generated dependencies file for bench_ablation_multibutterfly.
# This may be replaced when dependencies are built.
