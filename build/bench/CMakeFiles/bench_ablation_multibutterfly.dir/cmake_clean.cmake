file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multibutterfly.dir/bench_ablation_multibutterfly.cpp.o"
  "CMakeFiles/bench_ablation_multibutterfly.dir/bench_ablation_multibutterfly.cpp.o.d"
  "bench_ablation_multibutterfly"
  "bench_ablation_multibutterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multibutterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
