# Empty dependencies file for extra_stage_test.
# This may be replaced when dependencies are built.
