file(REMOVE_RECURSE
  "CMakeFiles/extra_stage_test.dir/extra_stage_test.cpp.o"
  "CMakeFiles/extra_stage_test.dir/extra_stage_test.cpp.o.d"
  "extra_stage_test"
  "extra_stage_test.pdb"
  "extra_stage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_stage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
