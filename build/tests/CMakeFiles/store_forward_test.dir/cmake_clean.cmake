file(REMOVE_RECURSE
  "CMakeFiles/store_forward_test.dir/store_forward_test.cpp.o"
  "CMakeFiles/store_forward_test.dir/store_forward_test.cpp.o.d"
  "store_forward_test"
  "store_forward_test.pdb"
  "store_forward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
