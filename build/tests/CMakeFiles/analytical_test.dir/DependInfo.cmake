
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytical_test.cpp" "tests/CMakeFiles/analytical_test.dir/analytical_test.cpp.o" "gcc" "tests/CMakeFiles/analytical_test.dir/analytical_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/worm_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/worm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/worm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/worm_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/worm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/worm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/worm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/worm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
