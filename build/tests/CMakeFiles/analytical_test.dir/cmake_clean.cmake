file(REMOVE_RECURSE
  "CMakeFiles/analytical_test.dir/analytical_test.cpp.o"
  "CMakeFiles/analytical_test.dir/analytical_test.cpp.o.d"
  "analytical_test"
  "analytical_test.pdb"
  "analytical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
