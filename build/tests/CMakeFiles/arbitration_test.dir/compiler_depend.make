# Empty compiler generated dependencies file for arbitration_test.
# This may be replaced when dependencies are built.
