file(REMOVE_RECURSE
  "CMakeFiles/digit_perm_test.dir/digit_perm_test.cpp.o"
  "CMakeFiles/digit_perm_test.dir/digit_perm_test.cpp.o.d"
  "digit_perm_test"
  "digit_perm_test.pdb"
  "digit_perm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_perm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
