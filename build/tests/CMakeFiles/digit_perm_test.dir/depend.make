# Empty dependencies file for digit_perm_test.
# This may be replaced when dependencies are built.
