file(REMOVE_RECURSE
  "CMakeFiles/bmin_usage_test.dir/bmin_usage_test.cpp.o"
  "CMakeFiles/bmin_usage_test.dir/bmin_usage_test.cpp.o.d"
  "bmin_usage_test"
  "bmin_usage_test.pdb"
  "bmin_usage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmin_usage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
