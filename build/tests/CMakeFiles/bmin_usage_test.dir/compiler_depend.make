# Empty compiler generated dependencies file for bmin_usage_test.
# This may be replaced when dependencies are built.
