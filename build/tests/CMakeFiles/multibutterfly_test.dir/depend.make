# Empty dependencies file for multibutterfly_test.
# This may be replaced when dependencies are built.
