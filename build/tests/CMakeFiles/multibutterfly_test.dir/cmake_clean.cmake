file(REMOVE_RECURSE
  "CMakeFiles/multibutterfly_test.dir/multibutterfly_test.cpp.o"
  "CMakeFiles/multibutterfly_test.dir/multibutterfly_test.cpp.o.d"
  "multibutterfly_test"
  "multibutterfly_test.pdb"
  "multibutterfly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibutterfly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
