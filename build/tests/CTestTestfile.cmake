# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/digit_perm_test[1]_include.cmake")
include("/root/repo/build/tests/topology_spec_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/bmin_usage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extra_stage_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/analytical_test[1]_include.cmake")
include("/root/repo/build/tests/store_forward_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/arbitration_test[1]_include.cmake")
include("/root/repo/build/tests/multibutterfly_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
