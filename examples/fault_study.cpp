// Fault-tolerance study: quantifies Section 2.1's motivation for
// multipath MINs.  For each network design, reports whether the interior
// is single-fault tolerant and the average fraction of (src, dst) pairs
// still connected under f random interior channel faults.
//
// Usage: fault_study [--radix=4] [--stages=3] [--max-faults=4]
//                    [--trials=20] [--seed=9]

#include <iostream>

#include "analysis/fault.hpp"
#include "routing/router.hpp"
#include "topology/network.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::int64_t radix = 4;
  std::int64_t stages = 3;
  std::int64_t max_faults = 4;
  std::int64_t trials = 20;
  std::int64_t seed = 9;
  util::CliParser cli(
      "fault_study: pair connectivity of the MIN designs under random "
      "interior link faults");
  cli.add_flag("radix", &radix, "switch degree k");
  cli.add_flag("stages", &stages, "stage count n");
  cli.add_flag("max-faults", &max_faults, "largest fault count to test");
  cli.add_flag("trials", &trials, "random fault sets per count");
  cli.add_flag("seed", &seed, "random seed");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  auto make = [&](topology::NetworkKind kind, unsigned extra, unsigned d,
                  unsigned m) {
    topology::NetworkConfig config;
    config.kind = kind;
    config.topology = "cube";
    config.radix = static_cast<unsigned>(radix);
    config.stages = static_cast<unsigned>(stages);
    config.extra_stages = extra;
    config.dilation = d;
    config.vcs = m;
    return config;
  };
  const std::vector<topology::NetworkConfig> configs = {
      make(topology::NetworkKind::kTMIN, 0, 1, 1),
      make(topology::NetworkKind::kVMIN, 0, 1, 2),
      make(topology::NetworkKind::kDMIN, 0, 2, 1),
      make(topology::NetworkKind::kTMIN, 1, 1, 1),  // extra-stage MIN
      make(topology::NetworkKind::kBMIN, 0, 1, 1),
  };

  std::cout << "interior-fault coverage, N = "
            << util::ipow(static_cast<unsigned>(radix),
                          static_cast<unsigned>(stages))
            << " nodes (" << trials << " random fault sets per count)\n\n";

  std::vector<std::string> header{"network", "1-fault tolerant"};
  for (std::int64_t f = 1; f <= max_faults; ++f) {
    header.push_back("pairs ok, f=" + std::to_string(f));
  }
  util::Table table(std::move(header));

  for (const topology::NetworkConfig& config : configs) {
    const topology::Network net = topology::build_network(config);
    const auto router = routing::make_router(net);

    std::vector<topology::ChannelId> interior;
    for (const auto& ch : net.channels()) {
      if (ch.role == topology::ChannelRole::kForward ||
          ch.role == topology::ChannelRole::kBackward) {
        interior.push_back(ch.id);
      }
    }

    table.row().cell(config.describe());
    table.cell(std::string(
        analysis::single_fault_tolerant(net, *router) ? "yes" : "NO"));

    util::Rng rng(static_cast<std::uint64_t>(seed));
    for (std::int64_t f = 1; f <= max_faults; ++f) {
      double sum = 0;
      for (std::int64_t t = 0; t < trials; ++t) {
        analysis::FaultSet faults;
        while (faults.size() < static_cast<std::size_t>(f)) {
          faults.insert(interior[rng.below(interior.size())]);
        }
        sum += analysis::fault_coverage(net, *router, faults).fraction();
      }
      table.cell(sum / static_cast<double>(trials) * 100.0, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\n(values are % of ordered src/dst pairs that remain "
               "connected)\n";
  return 0;
}
