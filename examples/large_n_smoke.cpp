// Million-node smoke: prove the implicit topology backend at the scale
// it exists for.  Builds a k^n-node unidirectional MIN WITHOUT
// materializing the graph (topology/implicit.hpp), drives it at a given
// offered load, and asserts two budgets:
//
//   * peak RSS stays under --rss-budget-mb (the whole point of the
//     implicit backend: memory is O(lanes) engine hot state, not
//     O(N log N) port tables), and
//   * measured accepted throughput lands inside
//     [--min-accept-ratio, --max-accept-ratio] x the paper's closed-form
//     unbuffered delta-network acceptance p_{i+1} = 1-(1-p_i/k)^k
//     (analysis/analytical.hpp).  Wormhole switching with single-flit
//     buffers saturates BELOW that upper bound, so the default band
//     checks the simulation is in the analytically sane regime, not
//     equal to it.
//
// The default configuration is the 2,097,152-node radix-8 TMIN from
// DESIGN.md §13 (k=8, n=7: ~16.8M channels, ~16.8M lanes).  CI runs a
// short-window variant of exactly this binary; see results/BENCH_engine
// .json's `large_n_implicit` record for a full-window reference run.
//
// Usage: large_n_smoke [--radix=8] [--stages=7] [--load=1.0]
//                      [--length=32] [--warmup=400] [--measure=1200]
//                      [--drain=200] [--engine-threads=1]
//                      [--rss-budget-mb=6144]
//                      [--min-accept-ratio=0.3] [--max-accept-ratio=1.1]

#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>

#include "analysis/analytical.hpp"
#include "routing/router.hpp"
#include "sim/engine.hpp"
#include "topology/implicit.hpp"
#include "topology/net_view.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/resource.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::int64_t radix = 8;
  std::int64_t stages = 7;
  double load = 1.0;
  std::int64_t length = 32;
  std::int64_t warmup = 400;
  std::int64_t measure = 1'200;
  std::int64_t drain = 200;
  std::int64_t engine_threads = 1;
  std::int64_t rss_budget_mb = 6'144;
  double min_accept_ratio = 0.3;
  double max_accept_ratio = 1.1;
  util::CliParser cli(
      "large_n_smoke: million-node implicit-backend memory/throughput "
      "smoke");
  cli.add_flag("radix", &radix, "switch radix k");
  cli.add_flag("stages", &stages, "stages n; the network has k^n nodes");
  cli.add_flag("load", &load, "offered load fraction (1.0 = saturation)");
  cli.add_flag("length", &length, "message length in flits");
  cli.add_flag("warmup", &warmup, "warmup cycles before the window");
  cli.add_flag("measure", &measure, "measurement window in cycles");
  cli.add_flag("drain", &drain, "drain cycles after the window");
  cli.add_flag("engine-threads", &engine_threads,
               "advance-team width (0 = one domain per hardware thread)");
  cli.add_flag("rss-budget-mb", &rss_budget_mb,
               "fail if peak RSS exceeds this many MiB");
  cli.add_flag("min-accept-ratio", &min_accept_ratio,
               "fail if accepted/analytical falls below this");
  cli.add_flag("max-accept-ratio", &max_accept_ratio,
               "fail if accepted/analytical exceeds this");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }
  if (radix < 2 || stages < 1 || length < 1 || measure < 1 ||
      engine_threads < 0) {
    std::fprintf(stderr, "bad arguments; see --help\n");
    return 1;
  }

  topology::NetworkConfig net_config;
  net_config.kind = topology::NetworkKind::kTMIN;
  net_config.topology = "cube";
  net_config.radix = static_cast<unsigned>(radix);
  net_config.stages = static_cast<unsigned>(stages);
  net_config.dilation = 1;
  net_config.vcs = 1;
  if (!topology::ImplicitTopology::supports(net_config)) {
    std::fprintf(stderr, "configuration not expressible implicitly\n");
    return 1;
  }

  const auto implicit =
      std::make_shared<const topology::ImplicitTopology>(net_config);
  const topology::NetView network(implicit);
  std::printf("network: %s implicit backend\n",
              net_config.describe().c_str());
  std::printf("nodes %llu  switches %zu  channels %zu  lanes %zu\n",
              static_cast<unsigned long long>(network.node_count()),
              network.switch_count(), network.channel_count(),
              network.lane_count());

  const auto router = routing::make_router(network);
  traffic::WorkloadSpec workload;
  workload.pattern = traffic::WorkloadSpec::Pattern::kUniform;
  workload.offered = load;
  workload.length = traffic::LengthSpec::fixed(
      static_cast<std::uint32_t>(length));
  traffic::StandardTraffic traffic(network, workload);

  sim::SimConfig sim_config;
  sim_config.seed = 1;
  sim_config.warmup_cycles = static_cast<std::uint64_t>(warmup);
  sim_config.measure_cycles = static_cast<std::uint64_t>(measure);
  sim_config.drain_cycles = static_cast<std::uint64_t>(drain);
  sim_config.engine_threads = static_cast<std::uint32_t>(engine_threads);
  sim_config.implicit_topology = true;
  // Saturation runs hold every source queue at its cap by design.
  sim_config.sustainable_queue_limit =
      std::numeric_limits<std::uint64_t>::max();

  sim::Engine engine(network, *router, &traffic, sim_config);
  const sim::SimResult result = engine.run();

  const double accepted = result.throughput_fraction();
  const double analytical = analysis::unbuffered_delta_acceptance(
      net_config.radix, net_config.stages, load);
  const double ratio = analytical > 0.0 ? accepted / analytical : 0.0;
  const double rss = util::peak_rss_mib();

  std::printf("accepted throughput %.4f of capacity\n", accepted);
  std::printf("analytical unbuffered acceptance %.4f (ratio %.3f)\n",
              analytical, ratio);
  std::printf("delivered messages %llu\n",
              static_cast<unsigned long long>(
                  result.delivered_messages_total));
  std::printf("peak rss %.0f MiB (budget %lld MiB)\n", rss,
              static_cast<long long>(rss_budget_mb));

  bool ok = true;
  if (rss > static_cast<double>(rss_budget_mb)) {
    std::fprintf(stderr, "FAIL: peak RSS %.0f MiB over budget %lld MiB\n",
                 rss, static_cast<long long>(rss_budget_mb));
    ok = false;
  }
  if (ratio < min_accept_ratio || ratio > max_accept_ratio) {
    std::fprintf(stderr,
                 "FAIL: accepted/analytical ratio %.3f outside "
                 "[%.2f, %.2f]\n",
                 ratio, min_accept_ratio, max_accept_ratio);
    ok = false;
  }
  if (result.delivered_messages_total == 0) {
    std::fprintf(stderr, "FAIL: nothing delivered\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
