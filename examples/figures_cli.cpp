// Figure runner: reproduces any registered evaluation figure or ablation
// and prints it as a latency/throughput table — the exact rows/series the
// paper's plots report.  This is the tool used to produce EXPERIMENTS.md.
//
// Usage: figures_cli --figure=fig18a [--quick] [--seed=N] [--threads=N]
//        figures_cli --list

#include <iostream>

#include "experiment/figures.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::string figure = "fig18a";
  bool list = false;
  bool all = false;
  bool quick = false;
  bool csv = false;
  std::int64_t seed = 20250707;
  std::int64_t threads = 0;
  util::CliParser cli("figures_cli: run a paper figure reproduction");
  cli.add_flag("figure", &figure, "figure id (see --list)");
  cli.add_flag("list", &list, "list registered figure ids");
  cli.add_flag("all", &all, "run every registered figure");
  cli.add_flag("quick", &quick, "smoke-test mode (tiny simulations)");
  cli.add_flag("csv", &csv, "emit machine-readable CSV instead of tables");
  cli.add_flag("seed", &seed, "random seed");
  cli.add_flag("threads", &threads,
               "worker threads for the series sweep (0 = WORMSIM_THREADS "
               "env or sequential); results match the sequential run "
               "bitwise");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  if (list) {
    for (const std::string& id : experiment::figure_ids()) {
      std::cout << id << "\n";
    }
    return 0;
  }

  experiment::RunOptions options = experiment::RunOptions::from_env();
  options.quick = options.quick || quick;
  options.seed = static_cast<std::uint64_t>(seed);
  if (threads > 0) options.threads = static_cast<unsigned>(threads);

  std::vector<std::string> to_run;
  if (all) {
    to_run = experiment::figure_ids();
  } else {
    if (!experiment::figure_exists(figure)) {
      std::cerr << "unknown figure '" << figure << "'; try --list\n";
      return 1;
    }
    to_run.push_back(figure);
  }
  for (const std::string& id : to_run) {
    const experiment::FigureResult result =
        experiment::run_figure(id, options);
    if (csv) {
      experiment::print_figure_csv(result, std::cout);
    } else {
      experiment::print_figure(result, std::cout);
    }
  }
  return 0;
}
