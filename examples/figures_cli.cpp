// Figure runner: reproduces any registered evaluation figure or ablation
// and prints it as a latency/throughput table — the exact rows/series the
// paper's plots report.  This is the tool used to produce EXPERIMENTS.md
// and the CI-enforced tables under results/.
//
// Usage: figures_cli --figure=fig18a [--quick] [--seed=N] [--threads=N]
//        figures_cli --all [--shard=i/n] [--cache-dir=D] [--out-dir=D]
//        figures_cli --list
//
// --shard=i/n runs the i-th of n deterministic, figure-aligned partitions
// of the full suite's figure x point work list (CI fans the suite out over
// a matrix; the union of all shards is exactly --all).  --cache-dir (or
// WORMSIM_CACHE_DIR) replays content-addressed point results from disk —
// outputs stay byte-identical to an uncached sequential run.  --out-dir
// writes each figure's table to <dir>/<id>.txt (or .csv with --csv)
// instead of stdout, the exact bytes committed under results/.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "experiment/figures.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::string figure = "fig18a";
  bool list = false;
  bool all = false;
  bool quick = false;
  bool csv = false;
  std::int64_t seed = 20250707;
  std::int64_t threads = 0;
  std::int64_t engine_threads = 0;
  bool implicit_topology = false;
  std::string shard;
  std::string cache_dir;
  std::string out_dir;
  std::string json_dir;
  std::int64_t buffer_depth = 0;
  std::string flow_control;
  std::int64_t credit_delay = -1;
  double fault_fraction = -1.0;
  std::int64_t fault_seed = -1;
  std::int64_t fault_at_cycle = -1;
  std::int64_t heartbeat_cycles = 0;
  std::string heartbeat_dir;
  bool profile = false;
  util::CliParser cli("figures_cli: run a paper figure reproduction");
  cli.add_flag("figure", &figure, "figure id (see --list)");
  cli.add_flag("list", &list, "list registered figure ids");
  cli.add_flag("all", &all, "run every registered figure");
  cli.add_flag("quick", &quick, "smoke-test mode (tiny simulations)");
  cli.add_flag("csv", &csv, "emit machine-readable CSV instead of tables");
  cli.add_flag("seed", &seed, "random seed");
  cli.add_flag("threads", &threads,
               "worker threads for the point-granular sweep pool (0 = "
               "WORMSIM_THREADS env or sequential); results match the "
               "sequential run bitwise");
  cli.add_flag("engine-threads", &engine_threads,
               "advance-team width inside each simulated point (0 = "
               "WORMSIM_ENGINE_THREADS env or sequential); bitwise "
               "neutral, useful for single large simulations");
  cli.add_flag("implicit-topology", &implicit_topology,
               "compute topology records on the fly instead of "
               "materializing the graph (bitwise neutral; the million-node "
               "memory lever — see DESIGN.md §13)");
  cli.add_flag("shard", &shard,
               "with --all: run shard i of n (\"i/n\", 0-based) of the "
               "deterministic figure partition");
  cli.add_flag("cache-dir", &cache_dir,
               "content-addressed sweep-point cache directory (default "
               "WORMSIM_CACHE_DIR env; empty = no cache)");
  cli.add_flag("out-dir", &out_dir,
               "write each figure to <dir>/<id>.txt (or .csv) instead of "
               "stdout");
  cli.add_flag("json-dir", &json_dir,
               "also write <dir>/<id>.json results (default "
               "WORMSIM_JSON_DIR env)");
  cli.add_flag("buffer-depth", &buffer_depth,
               "per-lane input fifo depth in flits (0 = "
               "WORMSIM_BUFFER_DEPTH env or 1)");
  cli.add_flag("flow-control", &flow_control,
               "backpressure scheme: credit, onoff, or vct (default "
               "WORMSIM_FLOW_CONTROL env or credit)");
  cli.add_flag("credit-delay", &credit_delay,
               "credit/signal return delay in cycles (-1 = "
               "WORMSIM_CREDIT_DELAY env or 0)");
  cli.add_flag("fault-fraction", &fault_fraction,
               "kill this fraction of interior channels mid-run "
               "(DESIGN.md §14; -1 = WORMSIM_FAULT_FRACTION env or 0); "
               "dedicated fault figures override it per series");
  cli.add_flag("fault-seed", &fault_seed,
               "fault-plan RNG seed, independent of --seed (-1 = "
               "WORMSIM_FAULT_SEED env or 1)");
  cli.add_flag("fault-at-cycle", &fault_at_cycle,
               "cycle the fault plan lands (-1 = WORMSIM_FAULT_AT_CYCLE "
               "env or 0)");
  cli.add_flag("heartbeat-cycles", &heartbeat_cycles,
               "append an NDJSON heartbeat snapshot every N simulated "
               "cycles (DESIGN.md §15; 0 = WORMSIM_HEARTBEAT env or off); "
               "results stay bitwise identical either way");
  cli.add_flag("heartbeat-dir", &heartbeat_dir,
               "heartbeat stream root; each figure writes "
               "<dir>/<id>/<point>.ndjson + .status.json (default "
               "WORMSIM_HEARTBEAT_DIR env or .); watch live with "
               "telemetry_report --watch <dir>");
  cli.add_flag("profile", &profile,
               "attribute engine wall time to advance/routing/... phase "
               "buckets in the JSON manifest (default WORMSIM_PROFILE "
               "env; diagnostics only)");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  if (list) {
    for (const std::string& id : experiment::figure_ids()) {
      std::cout << id << "\n";
    }
    return 0;
  }

  experiment::RunOptions options = experiment::RunOptions::from_env();
  options.quick = options.quick || quick;
  options.seed = static_cast<std::uint64_t>(seed);
  if (threads > 0) options.threads = static_cast<unsigned>(threads);
  if (engine_threads > 0) {
    options.engine_threads = static_cast<std::uint32_t>(engine_threads);
  }
  options.implicit_topology = options.implicit_topology || implicit_topology;
  if (!cache_dir.empty()) options.cache_dir = cache_dir;
  if (!json_dir.empty()) options.json_dir = json_dir;
  if (buffer_depth > 0) {
    options.buffer_depth = static_cast<std::uint32_t>(buffer_depth);
  }
  if (!flow_control.empty()) {
    const auto scheme = sim::parse_flow_control(flow_control);
    if (!scheme) {
      std::cerr << "bad --flow-control '" << flow_control
                << "'; expected credit, onoff, or vct\n";
      return 1;
    }
    options.flow_control = *scheme;
  }
  if (credit_delay >= 0) {
    options.credit_delay = static_cast<std::uint32_t>(credit_delay);
  }
  if (fault_fraction >= 0.0) options.fault_fraction = fault_fraction;
  if (fault_seed >= 0) {
    options.fault_seed = static_cast<std::uint64_t>(fault_seed);
  }
  if (fault_at_cycle >= 0) {
    options.fault_at_cycle = static_cast<std::uint64_t>(fault_at_cycle);
  }
  if (heartbeat_cycles > 0) {
    options.heartbeat_cycles = static_cast<std::uint64_t>(heartbeat_cycles);
  }
  if (!heartbeat_dir.empty()) options.heartbeat_dir = heartbeat_dir;
  options.profile = options.profile || profile;

  unsigned shard_index = 0;
  unsigned shard_count = 1;
  if (!shard.empty()) {
    if (!util::parse_shard(shard, &shard_index, &shard_count)) {
      std::cerr << "bad --shard '" << shard << "'; expected i/n with i < n\n";
      return 1;
    }
    if (!all) {
      std::cerr << "--shard only makes sense with --all\n";
      return 1;
    }
  }

  std::vector<std::string> to_run;
  if (all) {
    to_run = shard_count > 1
                 ? experiment::shard_figure_ids(shard_index, shard_count,
                                                options)
                 : experiment::figure_ids();
  } else {
    if (!experiment::figure_exists(figure)) {
      std::cerr << "unknown figure '" << figure << "'; try --list\n";
      return 1;
    }
    to_run.push_back(figure);
  }
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "cannot create --out-dir '" << out_dir << "'\n";
      return 1;
    }
  }
  // Aggregated run instrumentation, reported on stderr at the end (stdout
  // carries the byte-pinned tables that CI diffs against results/).
  experiment::PoolStats totals;
  experiment::ResultCache::Stats cache_totals;
  bool any_cache = false;
  double wall_total = 0.0;
  for (const std::string& id : to_run) {
    const experiment::FigureResult result =
        experiment::run_figure(id, options);
    totals.computed += result.pool_stats.computed;
    totals.cache_hits += result.pool_stats.cache_hits;
    totals.speculated += result.pool_stats.speculated;
    totals.threads = std::max(totals.threads, result.pool_stats.threads);
    totals.busy_seconds += result.pool_stats.busy_seconds;
    totals.wall_seconds += result.pool_stats.wall_seconds;
    wall_total += result.wall_seconds;
    if (result.cache_used) {
      any_cache = true;
      cache_totals.hits += result.cache_stats.hits;
      cache_totals.misses += result.cache_stats.misses;
      cache_totals.rejected += result.cache_stats.rejected;
      cache_totals.stores += result.cache_stats.stores;
    }
    std::ofstream file;
    if (!out_dir.empty()) {
      const std::string path =
          out_dir + "/" + id + (csv ? ".csv" : ".txt");
      file.open(path, std::ios::trunc);
      if (!file.good()) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
      }
    }
    std::ostream& os = out_dir.empty() ? std::cout : file;
    if (csv) {
      experiment::print_figure_csv(result, os);
    } else {
      experiment::print_figure(result, os);
    }
    if (!out_dir.empty() && !file.good()) {
      std::cerr << "write failed for figure " << id << "\n";
      return 1;
    }
  }
  std::cerr << "run summary: " << to_run.size() << " figure(s) in "
            << std::fixed << std::setprecision(2) << wall_total << "s; "
            << totals.computed << " point(s) simulated, "
            << totals.cache_hits << " from cache, " << totals.speculated
            << " speculated; " << totals.threads << " worker(s), "
            << std::setprecision(0) << totals.utilization() * 100.0
            << "% utilized\n";
  if (any_cache) {
    std::cerr << "cache: " << cache_totals.hits << " hit(s), "
              << cache_totals.misses << " miss(es), "
              << cache_totals.rejected << " rejected, "
              << cache_totals.stores << " store(s)\n";
  }
  return 0;
}
