// Cluster workload study: the scenario that motivates the paper's
// Section 4 — several jobs, each confined to its own processor cluster,
// possibly with very different traffic intensities.  Compares the cube
// TMIN's channel-balanced partitioning against the butterfly TMIN's
// channel-shared partitioning under a configurable rate ratio, and prints
// per-level channel utilization so the sharing is visible.
//
// Usage: cluster_workload [--load=0.4] [--ratio=4:1:1:1] [--seed=1]

#include <iostream>
#include <sstream>

#include "analysis/utilization.hpp"
#include "experiment/figures.hpp"
#include "partition/cluster.hpp"
#include "routing/router.hpp"
#include "sim/engine.hpp"
#include "topology/network.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace wormsim;

std::vector<double> parse_ratio(const std::string& text) {
  std::vector<double> weights;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ':')) {
    weights.push_back(std::stod(part));
  }
  return weights;
}

void run_case(const topology::NetworkConfig& config,
              const partition::Clustering& clustering,
              const std::vector<double>& weights, double load,
              std::uint64_t seed, const std::string& label) {
  const topology::Network net = topology::build_network(config);
  const auto router = routing::make_router(net);
  traffic::WorkloadSpec workload;
  workload.offered = load;
  workload.clustering = clustering;
  workload.cluster_weights = weights;
  traffic::StandardTraffic traffic(net, workload);
  sim::SimConfig sim_config;
  sim_config.seed = seed;
  sim_config.warmup_cycles = 20'000;
  sim_config.measure_cycles = 100'000;
  sim_config.drain_cycles = 40'000;
  sim_config.record_channel_utilization = true;
  sim::Engine engine(net, *router, &traffic, sim_config);
  const sim::SimResult result = engine.run();

  std::cout << "\n--- " << label << " (" << config.describe() << ") ---\n"
            << "accepted " << result.throughput_fraction() * 100 << "% of "
            << result.offered_fraction() * 100 << "% offered, latency "
            << util::format_double(result.mean_latency_us(), 1) << " us, "
            << (result.sustainable() ? "sustainable" : "UNSUSTAINABLE")
            << "\n";
  util::Table table({"level", "role", "channels", "mean util%", "max util%"});
  for (const analysis::LevelUtilization& level : analysis::summarize_utilization(
           net, result.channel_busy_cycles, sim_config.measure_cycles)) {
    table.row()
        .cell(static_cast<std::uint64_t>(level.level))
        .cell(analysis::role_name(level.role))
        .cell(level.channel_count)
        .cell(level.mean * 100, 1)
        .cell(level.max * 100, 1);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  double load = 0.4;
  std::string ratio = "4:1:1:1";
  std::int64_t seed = 1;
  util::CliParser cli(
      "cluster_workload: multi-job cluster traffic on cube vs butterfly "
      "TMINs (Fig. 17 scenario)");
  cli.add_flag("load", &load, "machine-wide offered load fraction");
  cli.add_flag("ratio", &ratio, "per-cluster rate ratio a:b:c:d");
  cli.add_flag("seed", &seed, "random seed");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  const std::vector<double> weights = parse_ratio(ratio);
  if (weights.size() != 4) {
    std::cerr << "ratio must have four components\n";
    return 1;
  }

  const util::RadixSpec addr(4, 3);
  std::cout << "Four 16-node clusters, rate ratio " << ratio
            << ", machine-wide offered load " << load * 100 << "%\n";

  run_case(experiment::tmin_config("cube"),
           partition::Clustering::by_top_digits(addr, 1), weights, load,
           static_cast<std::uint64_t>(seed),
           "cube TMIN, channel-balanced clusters 0XX..3XX");
  run_case(experiment::tmin_config("butterfly"),
           partition::Clustering::by_top_digits(addr, 1), weights, load,
           static_cast<std::uint64_t>(seed),
           "butterfly TMIN, channel-reduced clusters 0XX..3XX");
  run_case(experiment::tmin_config("butterfly"),
           partition::Clustering::by_low_digits(addr, 1), weights, load,
           static_cast<std::uint64_t>(seed),
           "butterfly TMIN, channel-shared clusters XX0..XX3");
  return 0;
}
