// Turnaround-routing explorer: enumerates every shortest path between a
// source and destination of a butterfly BMIN, verifying Theorem 1 and
// reproducing the worked examples of Figs. 8-10 of the paper.
//
// Usage: turnaround_paths [--radix=2] [--stages=3] [--src=1] [--dst=5]

#include <iostream>

#include "analysis/path_enum.hpp"
#include "routing/router.hpp"
#include "topology/network.hpp"
#include "util/cli.hpp"
#include "util/radix.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::int64_t radix = 2;
  std::int64_t stages = 3;
  std::int64_t src = 1;  // 001
  std::int64_t dst = 5;  // 101 — the Fig. 8 example
  util::CliParser cli(
      "turnaround_paths: enumerate BMIN shortest paths (Theorem 1)");
  cli.add_flag("radix", &radix, "switch degree k");
  cli.add_flag("stages", &stages, "stage count n");
  cli.add_flag("src", &src, "source node");
  cli.add_flag("dst", &dst, "destination node");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  topology::NetworkConfig config;
  config.kind = topology::NetworkKind::kBMIN;
  config.radix = static_cast<unsigned>(radix);
  config.stages = static_cast<unsigned>(stages);
  const topology::Network net = topology::build_network(config);
  const util::RadixSpec& addr = net.address_spec();

  if (src == dst || src < 0 || dst < 0 ||
      static_cast<std::uint64_t>(src) >= net.node_count() ||
      static_cast<std::uint64_t>(dst) >= net.node_count()) {
    std::cerr << "need distinct nodes in [0, " << net.node_count() << ")\n";
    return 1;
  }

  const auto s = static_cast<std::uint64_t>(src);
  const auto d = static_cast<std::uint64_t>(dst);
  const unsigned t = util::first_difference(addr, s, d);
  std::cout << "butterfly BMIN, k=" << radix << ", n=" << stages << " ("
            << net.node_count() << " nodes)\n"
            << "S = " << addr.format(s) << ", D = " << addr.format(d)
            << ", FirstDifference(S, D) = " << t << "\n"
            << "Theorem 1 predicts k^t = " << util::ipow(config.radix, t)
            << " shortest paths of length 2(t+1) = " << 2 * (t + 1)
            << " channels\n\n";

  const auto router = routing::make_router(net);
  const auto paths = analysis::enumerate_paths(net, *router, s, d);
  std::cout << "enumerated " << paths.size() << " paths:\n";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::cout << "  path " << i + 1 << ": node " << addr.format(s);
    for (topology::ChannelId ch_id : paths[i].channels) {
      const topology::PhysChannel& ch = net.channel(ch_id);
      if (ch.dst.is_node()) {
        std::cout << " -> node " << addr.format(ch.dst.id);
      } else {
        const topology::Switch& sw = net.switch_ref(ch.dst.id);
        const char* arrow =
            ch.role == topology::ChannelRole::kBackward ? " \\> " : " -> ";
        std::cout << arrow << "G" << sw.stage << "." << sw.index;
      }
    }
    std::cout << "\n";
  }

  // Summary over every pair: verify Theorem 1 exhaustively.
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
  for (std::uint64_t a = 0; a < net.node_count(); ++a) {
    for (std::uint64_t b = 0; b < net.node_count(); ++b) {
      if (a == b) continue;
      const unsigned tt = util::first_difference(addr, a, b);
      const std::uint64_t expect = util::ipow(config.radix, tt);
      if (analysis::count_paths(net, *router, a, b) != expect) ++mismatches;
      ++checked;
    }
  }
  std::cout << "\nTheorem 1 check over all " << checked
            << " ordered pairs: " << (mismatches == 0 ? "PASS" : "FAIL")
            << "\n";
  return mismatches == 0 ? 0 : 1;
}
