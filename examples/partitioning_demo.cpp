// Partitioning demo: reproduces Section 4 of the paper — Figs. 14 and 15
// and Theorems 2-4 — by running the channel-usage analyses on cube,
// butterfly, omega, and baseline MINs and on the butterfly BMIN.
//
// Usage: partitioning_demo [--radix=2] [--stages=3]

#include <iostream>

#include "analysis/bmin_usage.hpp"
#include "partition/channel_usage.hpp"
#include "partition/cluster.hpp"
#include "routing/router.hpp"
#include "topology/network.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace wormsim;

void report_unidirectional(const topology::TopologySpec& topo,
                           const partition::Clustering& clustering,
                           const std::string& label) {
  const partition::UsageReport report =
      partition::analyze_channel_usage(topo, clustering);
  std::cout << "\n" << topo.name() << " MIN, " << label << ":\n";
  util::Table table({"cluster", "nodes", "channels per level (C1..Cn-1)",
                     "balanced"});
  for (std::size_t c = 0; c < report.clusters.size(); ++c) {
    std::string levels;
    for (unsigned level = 1; level + 1 < report.clusters[c].channels_per_level.size();
         ++level) {
      if (!levels.empty()) levels += " ";
      levels += std::to_string(report.clusters[c].channels_per_level[level]);
    }
    table.row()
        .cell(static_cast<std::uint64_t>(c))
        .cell(static_cast<std::uint64_t>(clustering.clusters[c].size()))
        .cell(levels)
        .cell(std::string(report.clusters[c].channel_balanced ? "yes" : "NO"));
  }
  table.print(std::cout);
  std::cout << "contention-free: " << (report.contention_free ? "yes" : "NO")
            << "\n";
  if (!report.shared.empty()) {
    std::cout << "example shared channels (level:address clusterA/clusterB):";
    for (std::size_t i = 0; i < std::min<std::size_t>(4, report.shared.size());
         ++i) {
      const auto& sh = report.shared[i];
      std::cout << "  C" << sh.level << ":" << sh.address << " "
                << sh.cluster_a << "/" << sh.cluster_b;
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t radix = 2;
  std::int64_t stages = 3;
  util::CliParser cli(
      "partitioning_demo: Theorems 2-4 and Figs. 14-15 of the paper");
  cli.add_flag("radix", &radix, "switch degree k");
  cli.add_flag("stages", &stages, "stage count n");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  const auto k = static_cast<unsigned>(radix);
  const auto n = static_cast<unsigned>(stages);
  const util::RadixSpec addr(k, n);

  std::cout << "=== Unidirectional MIN partitionability (N = " << addr.size()
            << ") ===\n";

  if (k == 2 && n == 3) {
    // Fig. 14: the paper's exact example partition 0XX, 1X0, 1X1.
    const partition::Clustering fig14 = partition::Clustering::from_cubes(
        {partition::CubeCluster::parse(addr, "0XX"),
         partition::CubeCluster::parse(addr, "1X0"),
         partition::CubeCluster::parse(addr, "1X1")});
    report_unidirectional(topology::cube_topology(k, n), fig14,
                          "Fig. 14 clusters 0XX / 1X0 / 1X1");
    // Fig. 15a: butterfly with 0XX / 10X / 11X (channel-reduced).
    const partition::Clustering fig15a = partition::Clustering::from_cubes(
        {partition::CubeCluster::parse(addr, "0XX"),
         partition::CubeCluster::parse(addr, "10X"),
         partition::CubeCluster::parse(addr, "11X")});
    report_unidirectional(topology::butterfly_topology(k, n), fig15a,
                          "Fig. 15a clusters 0XX / 10X / 11X");
    // Fig. 15b: butterfly with XX0 / XX1 (channel-shared).
    report_unidirectional(topology::butterfly_topology(k, n),
                          partition::Clustering::by_low_digits(addr, 1),
                          "Fig. 15b clusters XX0 / XX1");
  }

  const partition::Clustering top =
      partition::Clustering::by_top_digits(addr, 1);
  report_unidirectional(topology::cube_topology(k, n), top,
                        "base cubes on the top digit (Theorem 2)");
  report_unidirectional(topology::omega_topology(k, n), top,
                        "base cubes (omega behaves like cube)");
  report_unidirectional(topology::butterfly_topology(k, n), top,
                        "base cubes (Theorem 3: channel-reduced)");
  report_unidirectional(topology::baseline_topology(k, n), top,
                        "base cubes (baseline behaves like butterfly)");
  report_unidirectional(topology::butterfly_topology(k, n),
                        partition::Clustering::by_low_digits(addr, 1),
                        "low-digit clusters (Theorem 3: channel-shared)");

  std::cout << "\n=== BMIN partitionability (Theorem 4) ===\n";
  topology::NetworkConfig bmin;
  bmin.kind = topology::NetworkKind::kBMIN;
  bmin.radix = k;
  bmin.stages = n;
  const topology::Network net = topology::build_network(bmin);
  const auto router = routing::make_router(net);

  for (const auto& [clustering, label] :
       {std::make_pair(partition::Clustering::by_top_digits(addr, 1),
                       std::string("base cubes (top digit)")),
        std::make_pair(partition::Clustering::by_low_digits(addr, 1),
                       std::string("non-base cubes (low digit)"))}) {
    const analysis::BminUsageReport report =
        analysis::analyze_bmin_usage(net, *router, clustering);
    std::cout << "\nbutterfly BMIN, " << label << ":\n";
    util::Table table({"cluster", "nodes", "fwd/level", "bwd/level",
                       "max level", "balanced"});
    for (std::size_t c = 0; c < report.clusters.size(); ++c) {
      const auto& usage = report.clusters[c];
      std::string fwd, bwd;
      for (unsigned level = 0; level < usage.forward_per_level.size();
           ++level) {
        if (level > 0) {
          fwd += " ";
          bwd += " ";
        }
        fwd += std::to_string(usage.forward_per_level[level]);
        bwd += std::to_string(usage.backward_per_level[level]);
      }
      table.row()
          .cell(static_cast<std::uint64_t>(c))
          .cell(static_cast<std::uint64_t>(clustering.clusters[c].size()))
          .cell(fwd)
          .cell(bwd)
          .cell(static_cast<std::uint64_t>(usage.max_level_used))
          .cell(std::string(usage.channel_balanced ? "yes" : "NO"));
    }
    table.print(std::cout);
    std::cout << "contention-free: "
              << (report.contention_free ? "yes" : "NO") << "\n";
  }
  return 0;
}
