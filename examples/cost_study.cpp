// Cost-effectiveness study (Section 6: "more detailed cost and hardware
// design study of these networks is another interesting area").
//
// Joins the hardware cost model with measured saturation throughput to
// rank the designs by throughput per cost unit — quantifying the paper's
// conclusion that the two-dilated MIN is "the most cost effective design".
//
// Usage: cost_study [--quick] [--seed=3]

#include <iostream>

#include "analysis/cost.hpp"
#include "experiment/figures.hpp"
#include "experiment/sweep.hpp"
#include "partition/cluster.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  bool quick = false;
  std::int64_t seed = 3;
  util::CliParser cli("cost_study: hardware cost vs delivered performance");
  cli.add_flag("quick", &quick, "smoke mode (short simulations)");
  cli.add_flag("seed", &seed, "random seed");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  experiment::RunOptions options = experiment::RunOptions::from_env();
  options.quick = options.quick || quick;
  options.seed = static_cast<std::uint64_t>(seed);

  const std::vector<topology::NetworkConfig> configs = {
      experiment::tmin_config(), experiment::dmin_config(),
      experiment::vmin_config(), experiment::bmin_config()};

  std::cout << "64-node networks, global uniform traffic; cost model after "
               "Chien [22]\n\n";
  util::Table table({"network", "xpoints/switch", "buffers/switch",
                     "rel. delay", "wires", "cost units", "sat. thru%",
                     "thru/cost x1e6"});

  for (const topology::NetworkConfig& config : configs) {
    const analysis::NetworkCost cost = analysis::estimate_cost(config);

    // Measure saturation: the largest sustainable accepted throughput
    // over the load sweep.
    experiment::SeriesSpec spec;
    spec.label = config.describe();
    spec.net = config;
    spec.workload = [](const topology::NetView& net, double load) {
      traffic::WorkloadSpec workload;
      workload.offered = load;
      workload.clustering =
          partition::Clustering::global(net.node_count());
      return workload;
    };
    const experiment::Series series =
        experiment::run_series(spec, options.sweep_options());
    double saturation = 0.0;
    for (const experiment::SweepPoint& point : series.points) {
      saturation = std::max(saturation, point.throughput);
    }

    table.row()
        .cell(config.describe())
        .cell(cost.per_switch.crosspoints())
        .cell(static_cast<std::uint64_t>(cost.per_switch.flit_buffers))
        .cell(cost.per_switch.relative_delay(), 1)
        .cell(cost.wire_count)
        .cell(cost.cost_units(), 0)
        .cell(saturation * 100.0, 1)
        .cell(saturation / cost.cost_units() * 1e6, 1);
  }
  table.print(std::cout);
  return 0;
}
