// Trace a single worm through a network, cycle by cycle: the routing
// decisions (which lane each switch granted) and every flit transmission.
// A compact way to *watch* wormhole pipelining, VC multiplexing, and
// turnaround routing do their thing.
//
// Usage: trace_route [--kind=bmin] [--radix=2] [--stages=3]
//                    [--src=1] [--dst=5] [--flits=6] [--contender]

#include <iostream>

#include "analysis/utilization.hpp"
#include "routing/router.hpp"
#include "sim/engine.hpp"
#include "topology/network.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::string kind = "bmin";
  std::int64_t radix = 2;
  std::int64_t stages = 3;
  std::int64_t src = 1;
  std::int64_t dst = 5;
  std::int64_t flits = 6;
  bool contender = false;
  util::CliParser cli("trace_route: watch one worm traverse the network");
  cli.add_flag("kind", &kind, "tmin, dmin, vmin, or bmin");
  cli.add_flag("radix", &radix, "switch degree k");
  cli.add_flag("stages", &stages, "stage count n");
  cli.add_flag("src", &src, "source node");
  cli.add_flag("dst", &dst, "destination node");
  cli.add_flag("flits", &flits, "message length");
  cli.add_flag("contender", &contender,
               "inject a competing worm to show blocking");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  topology::NetworkConfig config;
  config.kind = kind == "tmin"   ? topology::NetworkKind::kTMIN
                : kind == "dmin" ? topology::NetworkKind::kDMIN
                : kind == "vmin" ? topology::NetworkKind::kVMIN
                                 : topology::NetworkKind::kBMIN;
  config.topology = "cube";
  config.radix = static_cast<unsigned>(radix);
  config.stages = static_cast<unsigned>(stages);
  config.dilation = config.kind == topology::NetworkKind::kDMIN ? 2 : 1;
  config.vcs = config.kind == topology::NetworkKind::kVMIN ? 2 : 1;

  const topology::Network net = topology::build_network(config);
  const auto router = routing::make_router(net);
  const util::RadixSpec& addr = net.address_spec();

  if (src == dst || static_cast<std::uint64_t>(dst) >= net.node_count() ||
      static_cast<std::uint64_t>(src) >= net.node_count()) {
    std::cerr << "need distinct nodes below " << net.node_count() << "\n";
    return 1;
  }

  sim::SimConfig sim_config;
  sim_config.warmup_cycles = 0;
  sim_config.measure_cycles = 1u << 30;
  sim_config.drain_cycles = 0;
  sim::Engine engine(net, *router, nullptr, sim_config);
  sim::RecordingTraceSink sink;
  engine.set_trace_sink(&sink);

  const sim::PacketId id = engine.inject_message(
      static_cast<topology::NodeId>(src),
      static_cast<std::uint64_t>(dst), static_cast<std::uint32_t>(flits));
  sim::PacketId rival = sim::kNoPacket;
  if (contender) {
    // A worm from another source to the same destination: watch the loser
    // stall until the winner's tail releases the ejection channel.
    const auto other = static_cast<topology::NodeId>(
        src == 0 ? net.node_count() - 1 : 0);
    rival = engine.inject_message(other, static_cast<std::uint64_t>(dst),
                                  static_cast<std::uint32_t>(flits));
  }
  if (!engine.run_until_idle(100'000)) {
    std::cerr << "did not drain\n";
    return 1;
  }

  auto lane_name = [&](topology::LaneId lane) {
    if (lane == topology::kInvalidId) return std::string("-");
    const topology::PhysChannel& ch = net.lane_channel(lane);
    std::string out = analysis::role_name(ch.role);
    out += " ch" + std::to_string(ch.id);
    if (ch.num_lanes > 1) {
      out += "." + std::to_string(net.lane(lane).lane_in_channel);
    }
    if (ch.dst.is_node()) {
      out += " ->node " + addr.format(ch.dst.id);
    } else {
      const topology::Switch& sw = net.switch_ref(ch.dst.id);
      out += " ->G" + std::to_string(sw.stage) + "." +
             std::to_string(sw.index);
    }
    return out;
  };

  std::cout << config.describe() << ": worm " << addr.format(src) << " -> "
            << addr.format(dst) << ", " << flits << " flits\n\n";
  util::Table table({"cycle", "packet", "event", "flit", "lane"});
  for (const sim::TraceEvent& event : sink.events()) {
    const char* what = "?";
    switch (event.kind) {
      case sim::TraceEvent::Kind::kCreated:
        what = "created";
        break;
      case sim::TraceEvent::Kind::kRouted:
        what = "routed";
        break;
      case sim::TraceEvent::Kind::kFlitMoved:
        what = "flit";
        break;
      case sim::TraceEvent::Kind::kDelivered:
        what = "delivered";
        break;
      case sim::TraceEvent::Kind::kTerminated:
        what = "terminated";
        break;
    }
    table.row()
        .cell(event.cycle)
        .cell(static_cast<std::uint64_t>(event.packet))
        .cell(std::string(what))
        .cell(static_cast<std::uint64_t>(event.flit_seq))
        .cell(lane_name(event.lane));
  }
  table.print(std::cout);

  std::cout << "\nlatency: "
            << engine.packet(id).deliver_cycle -
                   engine.packet(id).create_cycle
            << " cycles";
  if (rival != sim::kNoPacket) {
    std::cout << "; rival: "
              << engine.packet(rival).deliver_cycle -
                     engine.packet(rival).create_cycle
              << " cycles";
  }
  std::cout << "\n";
  return 0;
}
