// Quickstart: build each of the paper's four 64-node networks, drive them
// with global uniform traffic at one offered load, and print the headline
// metrics.  This is the five-minute tour of the public API:
//
//   NetworkConfig -> build_network -> make_router -> StandardTraffic
//                 -> Engine::run -> SimResult
//
// Usage:  quickstart [--load=0.4] [--seed=1] [--cycles=100000]
//                    [--buffer-depth=4] [--flow-control=credit]
//                    [--credit-delay=2] [--engine-threads=4]
//                    [--implicit-topology]

#include <iostream>
#include <memory>

#include "experiment/figures.hpp"
#include "routing/router.hpp"
#include "sim/engine.hpp"
#include "topology/implicit.hpp"
#include "topology/network.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  double load = 0.4;
  std::int64_t seed = 1;
  std::int64_t cycles = 100'000;
  std::int64_t buffer_depth = 1;
  std::string flow_control = "credit";
  std::int64_t credit_delay = 0;
  std::int64_t engine_threads = 1;
  bool implicit_topology = false;
  util::CliParser cli(
      "quickstart: simulate the paper's four wormhole MINs at one load");
  cli.add_flag("load", &load, "offered load as a fraction of capacity");
  cli.add_flag("seed", &seed, "random seed");
  cli.add_flag("cycles", &cycles, "measurement window in cycles");
  cli.add_flag("buffer-depth", &buffer_depth,
               "per-lane input fifo depth in flits");
  cli.add_flag("flow-control", &flow_control,
               "backpressure scheme: credit, onoff, or vct");
  cli.add_flag("credit-delay", &credit_delay,
               "credit/signal return delay in cycles");
  cli.add_flag("engine-threads", &engine_threads,
               "advance-team width inside the simulation (0 = one domain "
               "per hardware thread); results are identical at any width");
  cli.add_flag("implicit-topology", &implicit_topology,
               "compute topology records on the fly instead of "
               "materializing the graph; results are identical");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }
  const auto scheme = sim::parse_flow_control(flow_control);
  if (!scheme || buffer_depth < 1 || credit_delay < 0) {
    std::cerr << "bad flow-control knobs; expected --flow-control=credit|"
                 "onoff|vct, --buffer-depth>=1, --credit-delay>=0\n";
    return 1;
  }
  if (engine_threads < 0) {
    std::cerr << "bad --engine-threads; expected >= 0 (0 = one domain per "
                 "hardware thread)\n";
    return 1;
  }

  const std::vector<topology::NetworkConfig> configs = {
      experiment::tmin_config(),
      experiment::dmin_config(),
      experiment::vmin_config(),
      experiment::bmin_config(),
  };

  std::cout << "64-node MINs of 4x4 switches, global uniform traffic, "
            << "offered load " << load * 100 << "%\n"
            << "message lengths uniform in [8, 1024] flits; "
            << "channel bandwidth 20 flits/us\n\n";

  util::Table table({"network", "accepted%", "latency_us", "net_lat_us",
                     "sustainable", "max_queue"});
  for (const topology::NetworkConfig& config : configs) {
    const bool implicit =
        implicit_topology && topology::ImplicitTopology::supports(config);
    std::unique_ptr<const topology::Network> materialized;
    topology::ImplicitTopologyPtr implicit_topo;
    if (implicit) {
      implicit_topo =
          std::make_shared<const topology::ImplicitTopology>(config);
    } else {
      materialized = std::make_unique<const topology::Network>(
          topology::build_network(config));
    }
    const topology::NetView network =
        implicit ? topology::NetView(implicit_topo)
                 : topology::NetView(*materialized);
    const auto router = routing::make_router(network);

    traffic::WorkloadSpec workload;
    workload.pattern = traffic::WorkloadSpec::Pattern::kUniform;
    workload.offered = load;
    traffic::StandardTraffic traffic(network, workload);

    sim::SimConfig sim_config;
    sim_config.seed = static_cast<std::uint64_t>(seed);
    sim_config.warmup_cycles = static_cast<std::uint64_t>(cycles) / 4;
    sim_config.measure_cycles = static_cast<std::uint64_t>(cycles);
    sim_config.drain_cycles = static_cast<std::uint64_t>(cycles) / 4;
    sim_config.buffer_depth = static_cast<std::uint32_t>(buffer_depth);
    sim_config.flow_control = *scheme;
    sim_config.credit_delay = static_cast<std::uint32_t>(credit_delay);
    sim_config.engine_threads = static_cast<std::uint32_t>(engine_threads);
    sim_config.implicit_topology = implicit_topology;

    sim::Engine engine(network, *router, &traffic, sim_config);
    const sim::SimResult result = engine.run();

    table.row()
        .cell(config.describe())
        .cell(result.throughput_fraction() * 100.0, 1)
        .cell(result.mean_latency_us(), 1)
        .cell(result.mean_network_latency_us(), 1)
        .cell(std::string(result.sustainable() ? "yes" : "no"))
        .cell(result.max_source_queue);
  }
  table.print(std::cout);
  return 0;
}
