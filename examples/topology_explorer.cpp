// Topology explorer: prints the wiring of any supported MIN — connection
// patterns, the symbolic routing-tag derivation, and the stage-by-stage
// channel map.  Reproduces the structural content of Figs. 4-6 of the
// paper in text form.
//
// Usage: topology_explorer [--kind=tmin|dmin|vmin|bmin]
//                          [--topology=cube|butterfly|omega|baseline|flip]
//                          [--radix=2] [--stages=3]

#include <iostream>

#include "analysis/utilization.hpp"
#include "topology/network.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::string kind = "tmin";
  std::string topo = "cube";
  std::int64_t radix = 2;
  std::int64_t stages = 3;
  std::int64_t dilation = 2;
  std::int64_t vcs = 2;
  std::int64_t extra = 0;
  std::int64_t splitter = 0;
  util::CliParser cli("topology_explorer: dump MIN wiring and routing tags");
  cli.add_flag("kind", &kind, "network kind: tmin, dmin, vmin, bmin");
  cli.add_flag("topology", &topo,
               "cube, butterfly, omega, baseline, flip (unidirectional)");
  cli.add_flag("radix", &radix, "switch degree k");
  cli.add_flag("stages", &stages, "stage count n (N = k^n nodes)");
  cli.add_flag("dilation", &dilation, "channels per port (dmin only)");
  cli.add_flag("vcs", &vcs, "virtual channels per channel (vmin/bmin)");
  cli.add_flag("extra-stages", &extra, "adaptive extra stages (tmin/dmin/vmin)");
  cli.add_flag("splitter", &splitter,
               "multibutterfly splitter dilation (tmin base; 0 = off)");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  topology::NetworkConfig config;
  if (kind == "tmin") {
    config.kind = topology::NetworkKind::kTMIN;
  } else if (kind == "dmin") {
    config.kind = topology::NetworkKind::kDMIN;
  } else if (kind == "vmin") {
    config.kind = topology::NetworkKind::kVMIN;
  } else if (kind == "bmin") {
    config.kind = topology::NetworkKind::kBMIN;
  } else {
    std::cerr << "unknown kind: " << kind << "\n";
    return 1;
  }
  config.topology = topo;
  config.radix = static_cast<unsigned>(radix);
  config.stages = static_cast<unsigned>(stages);
  config.dilation =
      config.kind == topology::NetworkKind::kDMIN
          ? static_cast<unsigned>(dilation)
          : 1;
  config.vcs = config.kind == topology::NetworkKind::kVMIN ||
                       config.kind == topology::NetworkKind::kBMIN
                   ? static_cast<unsigned>(vcs)
                   : 1;
  if (config.kind == topology::NetworkKind::kBMIN && vcs == 2) {
    config.vcs = 1;  // plain BMIN unless explicitly requested
  }
  config.extra_stages = static_cast<unsigned>(extra);
  config.splitter_dilation = static_cast<unsigned>(splitter);

  const topology::Network net = topology::build_network(config);
  const topology::TopologySpec& spec = net.topology();
  const util::RadixSpec& addr = net.address_spec();

  std::cout << "network: " << config.describe() << "  (" << net.node_count()
            << " nodes, " << net.switches().size() << " switches, "
            << net.channels().size() << " channels, " << net.lane_count()
            << " lanes)\n\n";

  std::cout << "connection patterns (digit layouts, MSD first):\n";
  for (unsigned i = 0; i <= spec.stages(); ++i) {
    std::cout << "  C" << i << " = " << spec.connection(i).describe() << "\n";
  }
  std::cout << "\nrouting tags: ";
  for (unsigned i = 0; i < spec.stages(); ++i) {
    std::cout << "t" << i << "=d" << spec.tag_digit(i)
              << (i + 1 < spec.stages() ? ", " : "\n");
  }
  std::cout << "\nsymbolic channel-address trace:\n"
            << spec.trace().describe(spec.stages()) << "\n";

  std::cout << "channel map:\n";
  util::Table table({"channel", "role", "level", "address", "from", "to",
                     "lanes"});
  auto endpoint_name = [&](const topology::Endpoint& ep) {
    if (ep.is_node()) return "node " + addr.format(ep.id);
    const topology::Switch& sw = net.switch_ref(ep.id);
    return "G" + std::to_string(sw.stage) + "." +
           std::to_string(sw.index) + (ep.side == topology::Side::kLeft
                                           ? ".l"
                                           : ".r") +
           std::to_string(ep.port);
  };
  for (const topology::PhysChannel& ch : net.channels()) {
    table.row()
        .cell(static_cast<std::uint64_t>(ch.id))
        .cell(analysis::role_name(ch.role))
        .cell(static_cast<std::uint64_t>(ch.conn_index))
        .cell(addr.format(ch.address))
        .cell(endpoint_name(ch.src))
        .cell(endpoint_name(ch.dst))
        .cell(static_cast<std::uint64_t>(ch.num_lanes));
  }
  table.print(std::cout);
  return 0;
}
