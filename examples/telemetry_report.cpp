// Telemetry report: ASCII channel heatmaps, interval-sample timelines,
// Chrome-trace export, and JSON results-directory summaries.
//
// Modes:
//   telemetry_report --figure=fig18a --load=0.5 [--quick] [--seed=N]
//       Runs every series of a figure at one offered load with telemetry
//       counters + sampling enabled and prints, per series, the per-stage
//       channel heatmap, arbitration totals, and a saturation timeline.
//   telemetry_report --dir=results/json
//       Summarizes a directory of schema-versioned JSON results (one row
//       per file: id, seed, git revision, points, peak throughput).
//   telemetry_report --chrome=trace.json [--messages=N]
//       Replays a small manually injected DMIN run and writes a
//       chrome://tracing / Perfetto JSON file of worm lane occupancy.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <iostream>

#include "experiment/figures.hpp"
#include "experiment/results_json.hpp"
#include "experiment/sweep.hpp"
#include "routing/router.hpp"
#include "sim/engine.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/result_writer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace wormsim;

void print_samples(const std::vector<telemetry::Sample>& samples,
                   std::ostream& os) {
  if (samples.empty()) {
    os << "  (no samples recorded)\n";
    return;
  }
  // Thin the timeline to at most 12 rows; the full series is in the
  // SimResult for programmatic use.
  const std::size_t stride = samples.size() > 12 ? samples.size() / 12 : 1;
  util::Table table({"cycle", "delivered_flits", "flits_in_flight",
                     "worms_in_flight", "mean_queue"});
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    const telemetry::Sample& sample = samples[i];
    table.row()
        .cell(sample.cycle)
        .cell(sample.delivered_flits)
        .cell(static_cast<std::int64_t>(sample.flits_in_flight))
        .cell(static_cast<std::int64_t>(sample.worms_in_flight))
        .cell(sample.mean_queue_depth, 2);
  }
  table.print(os);
}

int report_figure(const std::string& figure, double load,
                  const experiment::RunOptions& options) {
  if (!experiment::figure_exists(figure)) {
    std::cerr << "unknown figure '" << figure << "'\n";
    return 1;
  }
  const experiment::FigureSpec spec = experiment::figure_spec(figure);
  std::cout << "== telemetry report: " << spec.title << " @ load "
            << util::format_double(load * 100.0, 0) << "% ==\n";
  for (const experiment::SeriesSpec& series : spec.series) {
    experiment::SeriesSpec tweaked = series;
    auto base_tweak = series.tweak_sim;
    tweaked.tweak_sim = [base_tweak](sim::SimConfig& config) {
      if (base_tweak) base_tweak(config);
      config.telemetry.counters = true;
      config.telemetry.sampling = true;
    };
    sim::SimResult result;
    const experiment::SweepPoint point = experiment::run_point(
        tweaked, load, options.sim_config(), &result);

    std::cout << "\n-- " << series.label << " --\n";
    std::cout << "accepted "
              << util::format_double(point.throughput * 100.0, 1)
              << "%  latency " << util::format_double(point.latency_us, 1)
              << " us  " << (point.sustainable ? "sustainable" : "SATURATED")
              << "\n";
    const topology::Network network = topology::build_network(series.net);
    const telemetry::ChannelHeatmap heatmap = telemetry::build_heatmap(
        network, result.telemetry_counters, result.measure_cycles);
    telemetry::print_heatmap(heatmap, std::cout);
    std::cout << "  arbitration: "
              << result.telemetry_counters.total_grants() << " grants, "
              << result.telemetry_counters.total_denials()
              << " denials; blocked header-cycles "
              << result.telemetry_counters.total_blocked_cycles() << "\n";
    print_samples(result.telemetry_samples, std::cout);
  }
  return 0;
}

int report_directory(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "cannot read directory '" << dir << "'\n";
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "no .json results in '" << dir << "'\n";
    return 1;
  }
  util::Table table({"id", "schema", "seed", "git", "series", "points",
                     "peak_accepted%", "cycles/s"});
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    std::string error;
    const telemetry::JsonValue doc = telemetry::JsonValue::parse(text, &error);
    if (!error.empty()) {
      std::cerr << "skipping '" << path.string() << "': " << error << "\n";
      continue;
    }
    std::size_t points = 0;
    double peak = 0.0;
    for (const telemetry::JsonValue& series : doc.at("series").items()) {
      for (const telemetry::JsonValue& p : series.at("points").items()) {
        ++points;
        peak = std::max(peak, p.at("throughput").as_number());
      }
    }
    table.row()
        .cell(doc.at("id").as_string())
        .cell(doc.at("schema_version").as_uint())
        .cell(doc.at("seed").as_uint())
        .cell(doc.at("git_revision").as_string())
        .cell(static_cast<std::uint64_t>(doc.at("series").items().size()))
        .cell(static_cast<std::uint64_t>(points))
        .cell(peak * 100.0, 1)
        .cell(doc.at("cycles_per_second").as_number(), 0);
  }
  table.print(std::cout);
  return 0;
}

int export_chrome(const std::string& path, std::int64_t messages,
                  std::uint64_t seed) {
  const topology::Network network =
      topology::build_network(experiment::dmin_config());
  const auto router = routing::make_router(network);
  sim::SimConfig config;
  config.warmup_cycles = 0;
  config.measure_cycles = 1u << 30;
  config.drain_cycles = 0;
  sim::Engine engine(network, *router, nullptr, config);
  sim::RecordingTraceSink sink;
  engine.set_trace_sink(&sink);
  util::Rng rng(seed);
  for (std::int64_t i = 0; i < messages; ++i) {
    const auto src = static_cast<topology::NodeId>(
        rng.below(network.node_count()));
    std::uint64_t dst = rng.below(network.node_count());
    while (dst == src) dst = rng.below(network.node_count());
    engine.inject_message(src, dst, 16 + 8 * static_cast<std::uint32_t>(
                                                i % 4));
  }
  if (!engine.run_until_idle(1'000'000)) {
    std::cerr << "run did not drain\n";
    return 1;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::cerr << "cannot write '" << path << "'\n";
    return 1;
  }
  const std::size_t slices = telemetry::write_chrome_trace(
      sink.events(), network, out);
  std::cout << "wrote " << slices << " occupancy slices for " << messages
            << " worms to " << path
            << " (open in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string figure = "fig18a";
  std::string dir;
  std::string chrome;
  double load = 0.5;
  std::int64_t messages = 8;
  bool quick = false;
  std::int64_t seed = 20250707;
  util::CliParser cli(
      "telemetry_report: channel heatmaps, trace export, results summary");
  cli.add_flag("figure", &figure, "figure id to run with telemetry on");
  cli.add_flag("load", &load, "offered load fraction for --figure");
  cli.add_flag("dir", &dir, "summarize a directory of JSON results");
  cli.add_flag("chrome", &chrome, "write a Chrome-trace JSON to this path");
  cli.add_flag("messages", &messages, "worms to record for --chrome");
  cli.add_flag("quick", &quick, "smoke-test simulation sizes");
  cli.add_flag("seed", &seed, "random seed");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  if (!dir.empty()) return report_directory(dir);
  if (!chrome.empty()) {
    return export_chrome(chrome, messages,
                         static_cast<std::uint64_t>(seed));
  }
  experiment::RunOptions options = experiment::RunOptions::from_env();
  options.quick = options.quick || quick;
  options.seed = static_cast<std::uint64_t>(seed);
  options.json_dir.clear();  // reporting only; never writes results
  return report_figure(figure, load, options);
}
