// Telemetry report: ASCII channel heatmaps, interval-sample timelines,
// Chrome-trace export, and JSON results-directory summaries.
//
// Modes:
//   telemetry_report --figure=fig18a --load=0.5 [--quick] [--seed=N]
//       Runs every series of a figure at one offered load with telemetry
//       counters + sampling enabled and prints, per series, the per-stage
//       channel heatmap, arbitration totals, and a saturation timeline.
//   telemetry_report --dir=results/json
//       Summarizes a directory of schema-versioned JSON results (one row
//       per file: id, seed, git revision, points, peak throughput).
//   telemetry_report --chrome=trace.json [--messages=N]
//       Replays a small manually injected DMIN run and writes a
//       chrome://tracing / Perfetto JSON file of worm lane occupancy.
//   telemetry_report --figure=fig18a --load=0.5 --stalls
//                    [--worm-trace=DIR]
//       Stall-attribution view: runs the figure's series with per-worm
//       tracing on and prints the latency decomposition (queue / routing
//       / blocked / streaming mean+p95), the blocking-chain-depth
//       histogram, and the top culprit lanes and worms.  --worm-trace
//       additionally writes one Perfetto per-worm trace per series into
//       DIR (and implies --stalls).
//   telemetry_report --figure=fig18a --load=0.5 --profile
//       Adds the engine phase-attribution table (DESIGN.md §15) to the
//       per-series report: wall seconds per engine phase and the
//       coverage of the attribution against total engine wall time.
//   telemetry_report --watch=DIR [--watch-iterations=N]
//                    [--watch-interval-ms=M]
//       Live view of a heartbeat directory (WORMSIM_HEARTBEAT /
//       --heartbeat-dir on figures_cli): polls every *.status.json under
//       DIR and renders one row per run until all runs finish (or N
//       iterations elapse).  Status files are rewritten atomically, so
//       polling never observes a torn document.
//   telemetry_report --check-stream=FILE
//       Schema-checks one NDJSON heartbeat stream: every line parses,
//       line types and required keys are right, cycles are monotonic,
//       and the stream is start...final complete.  Exit 1 on violation.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <iostream>
#include <limits>
#include <thread>

#include "experiment/figures.hpp"
#include "experiment/results_json.hpp"
#include "experiment/sweep.hpp"
#include "routing/router.hpp"
#include "sim/engine.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/result_writer.hpp"
#include "telemetry/worm_trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace wormsim;

void print_samples(const std::vector<telemetry::Sample>& samples,
                   std::ostream& os) {
  if (samples.empty()) {
    os << "  (no samples recorded)\n";
    return;
  }
  // Thin the timeline to at most 12 rows; the full series is in the
  // SimResult for programmatic use.
  const std::size_t stride = samples.size() > 12 ? samples.size() / 12 : 1;
  util::Table table({"cycle", "delivered_flits", "flits_in_flight",
                     "worms_in_flight", "mean_queue"});
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    const telemetry::Sample& sample = samples[i];
    table.row()
        .cell(sample.cycle)
        .cell(sample.delivered_flits)
        .cell(static_cast<std::int64_t>(sample.flits_in_flight))
        .cell(static_cast<std::int64_t>(sample.worms_in_flight))
        .cell(sample.mean_queue_depth, 2);
  }
  table.print(os);
}

void print_phase_profile(const telemetry::PhaseProfile& profile,
                         std::ostream& os) {
  const double attributed = profile.attributed_seconds();
  util::Table table({"engine_phase", "seconds", "share%"});
  for (std::size_t i = 0; i < telemetry::kEnginePhaseCount; ++i) {
    table.row()
        .cell(std::string(telemetry::engine_phase_name(
            static_cast<telemetry::EnginePhase>(i))))
        .cell(profile.seconds[i], 4)
        .cell(attributed > 0.0 ? profile.seconds[i] / attributed * 100.0
                               : 0.0,
              1);
  }
  table.print(os);
  os << "  attributed " << util::format_double(attributed, 3) << "s of "
     << util::format_double(profile.total_seconds, 3)
     << "s engine wall (coverage "
     << util::format_double(profile.coverage() * 100.0, 1) << "%)\n";
}

int report_figure(const std::string& figure, double load,
                  const experiment::RunOptions& options, bool profile) {
  if (!experiment::figure_exists(figure)) {
    std::cerr << "unknown figure '" << figure << "'\n";
    return 1;
  }
  const experiment::FigureSpec spec = experiment::figure_spec(figure);
  std::cout << "== telemetry report: " << spec.title << " @ load "
            << util::format_double(load * 100.0, 0) << "% ==\n";
  for (const experiment::SeriesSpec& series : spec.series) {
    experiment::SeriesSpec tweaked = series;
    auto base_tweak = series.tweak_sim;
    tweaked.tweak_sim = [base_tweak, profile](sim::SimConfig& config) {
      if (base_tweak) base_tweak(config);
      config.telemetry.counters = true;
      config.telemetry.sampling = true;
      config.telemetry.profile = config.telemetry.profile || profile;
    };
    sim::SimResult result;
    const experiment::SweepPoint point = experiment::run_point(
        tweaked, load, options.sim_config(), &result);

    std::cout << "\n-- " << series.label << " --\n";
    std::cout << "accepted "
              << util::format_double(point.throughput * 100.0, 1)
              << "%  latency " << util::format_double(point.latency_us, 1)
              << " us  " << (point.sustainable ? "sustainable" : "SATURATED")
              << "\n";
    const topology::Network network = topology::build_network(series.net);
    const telemetry::ChannelHeatmap heatmap = telemetry::build_heatmap(
        network, result.telemetry_counters, result.measure_cycles);
    telemetry::print_heatmap(heatmap, std::cout);
    std::cout << "  arbitration: "
              << result.telemetry_counters.total_grants() << " grants, "
              << result.telemetry_counters.total_denials()
              << " denials; blocked header-cycles "
              << result.telemetry_counters.total_blocked_cycles() << "\n";
    print_samples(result.telemetry_samples, std::cout);
    if (result.phase_profile.enabled) {
      print_phase_profile(result.phase_profile, std::cout);
    }
  }
  return 0;
}

std::string sanitize_for_filename(const std::string& label) {
  std::string out;
  for (char c : label) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out.push_back(keep ? c : '_');
  }
  return out;
}

void p95_cell(util::Table& table, double p95_cycles) {
  if (p95_cycles == std::numeric_limits<double>::infinity()) {
    table.cell(std::string("overflow"));
  } else {
    table.cell(p95_cycles, 1);
  }
}

int report_stalls(const std::string& figure, double load,
                  const experiment::RunOptions& options,
                  const std::string& trace_dir) {
  if (!experiment::figure_exists(figure)) {
    std::cerr << "unknown figure '" << figure << "'\n";
    return 1;
  }
  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) {
      std::cerr << "cannot create '" << trace_dir << "': " << ec.message()
                << "\n";
      return 1;
    }
  }
  const experiment::FigureSpec spec = experiment::figure_spec(figure);
  std::cout << "== stall attribution: " << spec.title << " @ load "
            << util::format_double(load * 100.0, 0) << "% ==\n";
  for (const experiment::SeriesSpec& series : spec.series) {
    experiment::SeriesSpec tweaked = series;
    auto base_tweak = series.tweak_sim;
    tweaked.tweak_sim = [base_tweak](sim::SimConfig& config) {
      if (base_tweak) base_tweak(config);
      config.telemetry.worm_trace = true;
    };
    sim::SimResult result;
    const experiment::SweepPoint point = experiment::run_point(
        tweaked, load, options.sim_config(), &result);
    if (result.worm_trace == nullptr) {
      std::cerr << "tracer missing for '" << series.label << "'\n";
      return 1;
    }
    const telemetry::WormTraceSummary summary =
        telemetry::summarize_worm_trace(*result.worm_trace);

    std::cout << "\n-- " << series.label << " --\n";
    std::cout << "accepted "
              << util::format_double(point.throughput * 100.0, 1)
              << "%  latency " << util::format_double(point.latency_us, 1)
              << " us  " << (point.sustainable ? "sustainable" : "SATURATED")
              << "  (" << summary.delivered << " worms, "
              << summary.unfinished << " unfinished)\n";
    const double fpus = result.flits_per_microsecond;
    util::Table table({"component", "mean_cycles", "mean_us", "p95_cycles"});
    table.row().cell(std::string("queue"))
        .cell(summary.queue_cycles.mean(), 1)
        .cell(summary.queue_cycles.mean() / fpus, 2);
    p95_cell(table, summary.queue_p95_cycles);
    table.row().cell(std::string("routing"))
        .cell(summary.routing_cycles.mean(), 1)
        .cell(summary.routing_cycles.mean() / fpus, 2);
    p95_cell(table, summary.routing_p95_cycles);
    table.row().cell(std::string("blocked"))
        .cell(summary.blocked_cycles.mean(), 1)
        .cell(summary.blocked_cycles.mean() / fpus, 2);
    p95_cell(table, summary.blocked_p95_cycles);
    table.row().cell(std::string("streaming"))
        .cell(summary.streaming_cycles.mean(), 1)
        .cell(summary.streaming_cycles.mean() / fpus, 2);
    p95_cell(table, summary.streaming_p95_cycles);
    table.row().cell(std::string("total"))
        .cell(summary.total_cycles.mean(), 1)
        .cell(summary.total_cycles.mean() / fpus, 2)
        .cell(std::string("-"));
    table.print(std::cout);

    std::cout << "  blocked intervals " << summary.blocked_intervals
              << "; chain depth";
    if (summary.blocked_intervals == 0) std::cout << " (none)";
    for (std::size_t depth = 1;
         depth < summary.chain_depth_histogram.size(); ++depth) {
      if (summary.chain_depth_histogram[depth] == 0) continue;
      std::cout << "  " << depth << ":"
                << summary.chain_depth_histogram[depth];
    }
    std::cout << "\n";
    if (!summary.top_lanes.empty()) {
      std::cout << "  top culprit lanes:";
      for (const telemetry::WormTraceSummary::CulpritLane& lane :
           summary.top_lanes) {
        std::cout << "  " << lane.lane << " (" << lane.cycles << "cyc/"
                  << lane.intervals << "int)";
      }
      std::cout << "\n";
    }
    if (!summary.top_worms.empty()) {
      std::cout << "  top culprit worms:";
      for (const telemetry::WormTraceSummary::CulpritWorm& worm :
           summary.top_worms) {
        std::cout << "  " << worm.worm << " (" << worm.cycles << "cyc/"
                  << worm.intervals << "int)";
      }
      std::cout << "\n";
    }
    // Sub-attribution of blocked/streaming time where the downstream FIFO
    // had space but credits lagged.  Structurally zero at depth 1 /
    // delay 0, so legacy reports keep their exact bytes.
    if (summary.starved_cycles_total > 0) {
      std::cout << "  credit starvation: " << summary.starved_cycles_total
                << " starved cycles across " << summary.starved_worms
                << " worms; top starving lanes:";
      for (const telemetry::WormTraceSummary::StarvedLane& lane :
           summary.top_starved_lanes) {
        std::cout << "  " << lane.lane << " (" << lane.cycles << "cyc)";
      }
      std::cout << "\n";
    }

    if (!trace_dir.empty()) {
      const std::filesystem::path path =
          std::filesystem::path(trace_dir) /
          (figure + "_" + sanitize_for_filename(series.label) +
           ".trace.json");
      std::ofstream out(path, std::ios::trunc);
      if (!out.good()) {
        std::cerr << "cannot write '" << path.string() << "'\n";
        return 1;
      }
      telemetry::WormChromeOptions chrome_options;
      chrome_options.flits_per_microsecond = fpus;
      const std::size_t slices = telemetry::write_worm_trace_chrome(
          *result.worm_trace, out, chrome_options);
      std::cout << "  wrote " << slices << " slices to " << path.string()
                << "\n";
    }
  }
  return 0;
}

int report_directory(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "cannot read directory '" << dir << "'\n";
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "no .json results in '" << dir << "'\n";
    return 1;
  }
  util::Table table({"id", "schema", "seed", "git", "series", "points",
                     "peak_accepted%", "min_delivery%", "terminated",
                     "cycles/s", "engine"});
  std::size_t summarized = 0;
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    std::string error;
    const telemetry::JsonValue doc = telemetry::JsonValue::parse(text, &error);
    if (!error.empty()) {
      std::cerr << "skipping '" << path.string() << "': " << error << "\n";
      continue;
    }
    std::size_t points = 0;
    double peak = 0.0;
    // Fault-SLO roll-up (PR 9 fields): worst per-point delivery fraction
    // and the summed terminated messages.  find() keeps pre-fault results
    // readable — those files show "-".
    bool have_slo = false;
    double min_delivery = 1.0;
    std::uint64_t terminated = 0;
    for (const telemetry::JsonValue& series : doc.at("series").items()) {
      for (const telemetry::JsonValue& p : series.at("points").items()) {
        ++points;
        peak = std::max(peak, p.at("throughput").as_number());
        if (const telemetry::JsonValue* v = p.find("delivery_fraction")) {
          have_slo = true;
          min_delivery = std::min(min_delivery, v->as_number());
        }
        if (const telemetry::JsonValue* v = p.find("terminated_messages")) {
          terminated += v->as_uint();
        }
      }
    }
    // Advance-team width the run's points used; "-" for results written
    // before the knob existed or runs that stayed sequential (the
    // "engine" object is omitted in both cases).
    const telemetry::JsonValue* engine = doc.find("engine");
    const std::string engine_cell =
        engine != nullptr
            ? std::to_string(engine->at("threads").as_uint()) + "t"
            : std::string("-");
    table.row()
        .cell(doc.at("id").as_string())
        .cell(doc.at("schema_version").as_uint())
        .cell(doc.at("seed").as_uint())
        .cell(doc.at("git_revision").as_string())
        .cell(static_cast<std::uint64_t>(doc.at("series").items().size()))
        .cell(static_cast<std::uint64_t>(points))
        .cell(peak * 100.0, 1);
    if (have_slo) {
      table.cell(min_delivery * 100.0, 1).cell(terminated);
    } else {
      table.cell(std::string("-")).cell(std::string("-"));
    }
    table.cell(doc.at("cycles_per_second").as_number(), 0)
        .cell(engine_cell);
    ++summarized;
  }
  // Every file skipped is as useless to a caller (or a CI step) as an
  // empty directory: fail loudly instead of printing a bare header.
  if (summarized == 0) {
    std::cerr << "no readable .json results in '" << dir << "' ("
              << files.size() << " file(s) skipped)\n";
    return 1;
  }
  table.print(std::cout);
  return 0;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

/// One polling pass over every *.status.json under `dir`.  Returns the
/// number of runs seen; *all_finished reports whether every one of them
/// has written its terminal status.
std::size_t render_watch_pass(const std::string& dir, bool* all_finished,
                              std::ostream& os) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(dir, ec);
       !ec && it != std::filesystem::recursive_directory_iterator();
       it.increment(ec)) {
    if (it->is_regular_file(ec) &&
        ends_with(it->path().filename().string(), ".status.json")) {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  *all_finished = !files.empty();
  util::Table table({"run", "engine", "phase", "progress%", "cycle",
                     "in_flight", "delivered", "onset", "Mcyc/s"});
  std::size_t shown = 0;
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    std::string error;
    const telemetry::JsonValue doc = telemetry::JsonValue::parse(text, &error);
    if (!error.empty()) continue;  // racing writer; next pass catches up
    const bool finished = doc.at("finished").as_bool();
    if (!finished) *all_finished = false;
    // Run label: path relative to the watch root, minus the suffix —
    // e.g. "fig18a/tmin_load0p5".
    std::string run = std::filesystem::relative(path, dir, ec).string();
    if (ec || run.empty()) run = path.filename().string();
    run.resize(run.size() - std::string(".status.json").size());
    std::string onset = "-";
    if (const telemetry::JsonValue* v = doc.find("fault_onset_cycle")) {
      onset = "fault@" + std::to_string(v->as_uint());
    } else if (const telemetry::JsonValue* v2 =
                   doc.find("saturation_onset_cycle")) {
      onset = "sat@" + std::to_string(v2->as_uint());
    }
    table.row()
        .cell(run)
        .cell(doc.at("engine").as_string())
        .cell(finished ? std::string("done")
                       : doc.at("phase").as_string())
        .cell(doc.at("progress").as_number() * 100.0, 1)
        .cell(doc.at("cycle").as_uint())
        .cell(doc.at("flits_in_flight").as_uint())
        .cell(doc.at("messages_delivered").as_uint())
        .cell(onset)
        .cell(doc.at("cycles_per_second").as_number() * 1e-6, 2);
    ++shown;
  }
  if (shown > 0) table.print(os);
  return shown;
}

int watch_directory(const std::string& dir, std::int64_t iterations,
                    std::int64_t interval_ms) {
  for (std::int64_t pass = 0;; ++pass) {
    bool all_finished = false;
    const std::size_t runs = render_watch_pass(dir, &all_finished, std::cout);
    if (runs == 0) {
      std::cout << "(no *.status.json under '" << dir << "' yet)\n";
    }
    std::cout.flush();
    if (runs > 0 && all_finished) {
      std::cout << runs << " run(s), all finished\n";
      return 0;
    }
    if (iterations > 0 && pass + 1 >= iterations) {
      // Bounded watch (tests, CI): report what we saw and leave the
      // still-running sweeps to the next invocation.
      std::cout << runs << " run(s), still in progress\n";
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::cout << "----\n";
  }
}

/// Key set every heartbeat line must carry (telemetry/run_monitor.hpp
/// stream schema); the three wall-clock keys are required too — they are
/// nondeterministic but always present.
const char* const kHeartbeatKeys[] = {
    "cycle",           "phase",
    "messages_created", "messages_delivered",
    "messages_terminated", "flits_delivered",
    "flits_terminated", "flits_in_flight",
    "worms_in_flight", "queued_messages",
    "dropped_messages", "faulty_channels",
    "window_messages_created", "window_messages_delivered",
    "window_flits_delivered", "stage_occupancy",
    "wall_seconds",    "cycles_per_second",
    "window_cycles_per_second"};

int check_stream(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "cannot open stream '" << path << "'\n";
    return 1;
  }
  std::string line;
  std::size_t line_no = 0;
  std::size_t heartbeats = 0;
  std::size_t faults = 0;
  bool saw_start = false;
  bool saw_final = false;
  std::uint64_t last_cycle = 0;
  auto fail = [&](const std::string& what) {
    std::cerr << path << ":" << line_no << ": " << what << "\n";
    return 1;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) return fail("empty line in NDJSON stream");
    std::string error;
    const telemetry::JsonValue doc = telemetry::JsonValue::parse(line, &error);
    if (!error.empty()) return fail("parse error: " + error);
    if (!doc.is_object()) return fail("line is not a JSON object");
    const telemetry::JsonValue* type = doc.find("type");
    if (type == nullptr) return fail("missing \"type\"");
    const std::string kind = type->as_string();
    if (line_no == 1 && kind != "start") {
      return fail("stream must begin with a \"start\" line");
    }
    if (saw_final) return fail("line after \"final\"");
    if (kind == "start") {
      if (saw_start) return fail("duplicate \"start\" line");
      saw_start = true;
      for (const char* key : {"tag", "engine", "heartbeat_cycles",
                              "warmup_cycles", "measure_cycles",
                              "drain_cycles", "node_count"}) {
        if (doc.find(key) == nullptr) {
          return fail(std::string("start line missing \"") + key + "\"");
        }
      }
    } else if (kind == "heartbeat") {
      ++heartbeats;
      for (const char* key : kHeartbeatKeys) {
        if (doc.find(key) == nullptr) {
          return fail(std::string("heartbeat missing \"") + key + "\"");
        }
      }
      if (!doc.at("stage_occupancy").is_array()) {
        return fail("stage_occupancy is not an array");
      }
      const std::uint64_t cycle = doc.at("cycle").as_uint();
      if (cycle <= last_cycle) {
        return fail("heartbeat cycles not strictly increasing");
      }
      last_cycle = cycle;
    } else if (kind == "fault") {
      ++faults;
      for (const char* key : {"cycle", "transition", "channels",
                              "wall_seconds"}) {
        if (doc.find(key) == nullptr) {
          return fail(std::string("fault line missing \"") + key + "\"");
        }
      }
    } else if (kind == "final") {
      saw_final = true;
      for (const char* key : {"cycle", "drained", "messages_created",
                              "messages_delivered", "wall_seconds"}) {
        if (doc.find(key) == nullptr) {
          return fail(std::string("final line missing \"") + key + "\"");
        }
      }
      if (doc.at("cycle").as_uint() < last_cycle) {
        return fail("final cycle behind last heartbeat");
      }
    } else {
      return fail("unknown line type \"" + kind + "\"");
    }
  }
  ++line_no;
  if (!saw_start) return fail("empty stream");
  if (heartbeats == 0) return fail("stream has no heartbeat lines");
  if (!saw_final) return fail("stream has no \"final\" line");
  std::cout << "ok: " << path << " (" << heartbeats << " heartbeat(s), "
            << faults << " fault event(s), last cycle " << last_cycle
            << ")\n";
  return 0;
}

int export_chrome(const std::string& path, std::int64_t messages,
                  std::uint64_t seed) {
  const topology::Network network =
      topology::build_network(experiment::dmin_config());
  const auto router = routing::make_router(network);
  sim::SimConfig config;
  config.warmup_cycles = 0;
  config.measure_cycles = 1u << 30;
  config.drain_cycles = 0;
  sim::Engine engine(network, *router, nullptr, config);
  sim::RecordingTraceSink sink;
  engine.set_trace_sink(&sink);
  util::Rng rng(seed);
  for (std::int64_t i = 0; i < messages; ++i) {
    const auto src = static_cast<topology::NodeId>(
        rng.below(network.node_count()));
    std::uint64_t dst = rng.below(network.node_count());
    while (dst == src) dst = rng.below(network.node_count());
    engine.inject_message(src, dst, 16 + 8 * static_cast<std::uint32_t>(
                                                i % 4));
  }
  if (!engine.run_until_idle(1'000'000)) {
    std::cerr << "run did not drain\n";
    return 1;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::cerr << "cannot write '" << path << "'\n";
    return 1;
  }
  const std::size_t slices = telemetry::write_chrome_trace(
      sink.events(), network, out);
  std::cout << "wrote " << slices << " occupancy slices for " << messages
            << " worms to " << path
            << " (open in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string figure = "fig18a";
  std::string dir;
  std::string chrome;
  double load = 0.5;
  std::int64_t messages = 8;
  bool quick = false;
  bool stalls = false;
  bool profile = false;
  std::string watch;
  std::int64_t watch_iterations = 0;
  std::int64_t watch_interval_ms = 1000;
  std::string check_stream_path;
  std::string worm_trace_dir;
  std::int64_t seed = 20250707;
  std::int64_t buffer_depth = 0;
  std::string flow_control;
  std::int64_t credit_delay = -1;
  std::int64_t engine_threads = 0;
  bool implicit_topology = false;
  util::CliParser cli(
      "telemetry_report: channel heatmaps, trace export, results summary");
  cli.add_flag("figure", &figure, "figure id to run with telemetry on");
  cli.add_flag("load", &load, "offered load fraction for --figure");
  cli.add_flag("dir", &dir, "summarize a directory of JSON results");
  cli.add_flag("chrome", &chrome, "write a Chrome-trace JSON to this path");
  cli.add_flag("messages", &messages, "worms to record for --chrome");
  cli.add_flag("stalls", &stalls,
               "per-worm stall attribution view for --figure");
  cli.add_flag("profile", &profile,
               "engine phase-attribution table for --figure (DESIGN.md "
               "§15)");
  cli.add_flag("watch", &watch,
               "live view of a heartbeat directory: poll every "
               "*.status.json under DIR until all runs finish");
  cli.add_flag("watch-iterations", &watch_iterations,
               "stop --watch after N polling passes (0 = until every run "
               "finishes)");
  cli.add_flag("watch-interval-ms", &watch_interval_ms,
               "polling interval for --watch in milliseconds");
  cli.add_flag("check-stream", &check_stream_path,
               "schema-check one NDJSON heartbeat stream file; exit 1 on "
               "any violation");
  cli.add_flag("worm-trace", &worm_trace_dir,
               "write per-worm Perfetto traces here (implies --stalls)");
  cli.add_flag("quick", &quick, "smoke-test simulation sizes");
  cli.add_flag("seed", &seed, "random seed");
  cli.add_flag("buffer-depth", &buffer_depth,
               "per-lane input fifo depth in flits (0 = "
               "WORMSIM_BUFFER_DEPTH env or 1)");
  cli.add_flag("flow-control", &flow_control,
               "backpressure scheme: credit, onoff, or vct (default "
               "WORMSIM_FLOW_CONTROL env or credit)");
  cli.add_flag("credit-delay", &credit_delay,
               "credit/signal return delay in cycles (-1 = "
               "WORMSIM_CREDIT_DELAY env or 0)");
  cli.add_flag("engine-threads", &engine_threads,
               "advance-team width inside each simulated point (0 = "
               "WORMSIM_ENGINE_THREADS env or sequential); bitwise "
               "neutral");
  cli.add_flag("implicit-topology", &implicit_topology,
               "compute topology records on the fly instead of "
               "materializing the graph (bitwise neutral)");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  if (!check_stream_path.empty()) return check_stream(check_stream_path);
  if (!watch.empty()) {
    return watch_directory(watch, watch_iterations,
                           std::max<std::int64_t>(1, watch_interval_ms));
  }
  if (!dir.empty()) return report_directory(dir);
  if (!chrome.empty()) {
    return export_chrome(chrome, messages,
                         static_cast<std::uint64_t>(seed));
  }
  experiment::RunOptions options = experiment::RunOptions::from_env();
  options.quick = options.quick || quick;
  options.seed = static_cast<std::uint64_t>(seed);
  if (buffer_depth > 0) {
    options.buffer_depth = static_cast<std::uint32_t>(buffer_depth);
  }
  if (!flow_control.empty()) {
    const auto scheme = sim::parse_flow_control(flow_control);
    if (!scheme) {
      std::cerr << "bad --flow-control '" << flow_control
                << "'; expected credit, onoff, or vct\n";
      return 1;
    }
    options.flow_control = *scheme;
  }
  if (credit_delay >= 0) {
    options.credit_delay = static_cast<std::uint32_t>(credit_delay);
  }
  if (engine_threads > 0) {
    options.engine_threads = static_cast<std::uint32_t>(engine_threads);
  }
  options.implicit_topology = options.implicit_topology || implicit_topology;
  options.json_dir.clear();  // reporting only; never writes results
  if (stalls || !worm_trace_dir.empty()) {
    return report_stalls(figure, load, options, worm_trace_dir);
  }
  return report_figure(figure, load, options, profile);
}
