// Software multicast demo (the conclusion's future-work direction,
// following Xu, Gui & Ni, Supercomputing '94): compares sequential
// unicast, oblivious binomial, and fat-tree-aware subtree multicast
// schedules on a butterfly BMIN, with makespans measured by the
// flit-level engine.
//
// Usage: multicast_demo [--radix=4] [--stages=3] [--source=0]
//                       [--flits=128] [--destinations=63]

#include <iostream>
#include <utility>
#include <vector>

#include "routing/multicast.hpp"
#include "sim/multicast_replay.hpp"
#include "routing/router.hpp"
#include "topology/network.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wormsim;

  std::int64_t radix = 4;
  std::int64_t stages = 3;
  std::int64_t source = 0;
  std::int64_t flits = 128;
  std::int64_t count = -1;
  std::int64_t seed = 7;
  util::CliParser cli("multicast_demo: software multicast on a BMIN");
  cli.add_flag("radix", &radix, "switch degree k");
  cli.add_flag("stages", &stages, "stage count n");
  cli.add_flag("source", &source, "multicast source node");
  cli.add_flag("flits", &flits, "message length in flits");
  cli.add_flag("destinations", &count,
               "destination count (-1 = broadcast to all other nodes)");
  cli.add_flag("seed", &seed, "seed for random destination subsets");
  switch (cli.parse(argc, argv)) {
    case util::CliParser::Status::kHelp: return 0;
    case util::CliParser::Status::kError: return 1;
    case util::CliParser::Status::kOk: break;
  }

  topology::NetworkConfig config;
  config.kind = topology::NetworkKind::kBMIN;
  config.radix = static_cast<unsigned>(radix);
  config.stages = static_cast<unsigned>(stages);
  const topology::Network net = topology::build_network(config);
  const auto router = routing::make_router(net);

  const auto src = static_cast<topology::NodeId>(source);
  std::vector<topology::NodeId> pool;
  for (topology::NodeId node = 0; node < net.node_count(); ++node) {
    if (node != src) pool.push_back(node);
  }
  std::vector<topology::NodeId> dests = pool;
  if (count >= 0 && static_cast<std::size_t>(count) < pool.size()) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    rng.shuffle(pool);
    dests.assign(pool.begin(), pool.begin() + count);
  }

  std::cout << "BMIN k=" << radix << " n=" << stages << " ("
            << net.node_count() << " nodes); multicast from node " << source
            << " to " << dests.size() << " destinations, " << flits
            << " flits\n"
            << "round lower bound: " << routing::min_rounds(dests.size())
            << "\n\n";

  const auto len = static_cast<std::uint32_t>(flits);

  routing::MulticastSchedule sequential;
  for (topology::NodeId d : dests) sequential.rounds.push_back({{src, d}});
  const routing::MulticastSchedule binomial =
      routing::binomial_schedule(src, dests);
  const routing::MulticastSchedule subtree =
      routing::subtree_schedule(net, src, dests);
  routing::validate_schedule(src, dests, sequential);
  routing::validate_schedule(src, dests, binomial);
  routing::validate_schedule(src, dests, subtree);

  util::Table table({"schedule", "rounds", "messages", "makespan_cycles",
                     "makespan_us"});
  const std::vector<std::pair<std::string, const routing::MulticastSchedule*>>
      schedules = {{"sequential unicast", &sequential},
                   {"binomial (oblivious)", &binomial},
                   {"subtree (fat-tree aware)", &subtree}};
  for (const auto& [name, schedule] : schedules) {
    const std::uint64_t makespan =
        sim::simulate_makespan(net, *router, *schedule, len);
    table.row()
        .cell(name)
        .cell(static_cast<std::uint64_t>(schedule->round_count()))
        .cell(static_cast<std::uint64_t>(schedule->message_count()))
        .cell(makespan)
        .cell(static_cast<double>(makespan) / 20.0, 1);
  }
  table.print(std::cout);
  return 0;
}
